"""The Message Diverter (§2.2.3).

"The Message Diverter allows the primary/backup nodes to be a consistent
logic unit that interacts with other applications and handles all I/O
messages to and from applications, and diverts messages to the correct
node.  The current implementation uses Microsoft Message Queue.  ...  If
a message is sent during a switchover, the message non-delivery is
detected and retried."

Two halves:

* :class:`MessageDiverter` — the pair-side logical unit descriptor plus a
  helper for applications to open/consume their inbox queue.
* :class:`DiverterClient` — used by *external* applications (the test PC
  in Figure 3): addresses the logical unit, tracks which node is
  currently primary via the engines' role-change notifications, and
  re-targets unacknowledged MSMQ messages on switchover.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.engine import DIVERTER_PORT
from repro.msq.manager import QueueManager
from repro.msq.queue import MsmqQueue, QueueMessage
from repro.simnet.network import Message, NetNode
from repro.simnet.trace import TraceLog


def inbox_queue_name(unit: str) -> str:
    """The per-node inbox queue for logical unit *unit*."""
    return f"oftt.{unit}.inbox"


class MessageDiverter:
    """Pair-side view of one logical unit."""

    def __init__(self, unit: str, node_a: str, node_b: str) -> None:
        self.unit = unit
        self.nodes = (node_a, node_b)
        self.queue_name = inbox_queue_name(unit)

    def open_inbox(self, qmgr: QueueManager) -> MsmqQueue:
        """Create/open this unit's inbox on a member node."""
        return qmgr.create_queue(self.queue_name, journal=True)

    def __repr__(self) -> str:
        return f"MessageDiverter({self.unit}, nodes={self.nodes})"


class DiverterClient:
    """External-sender side of the diverter.

    Messages are sent through the local :class:`QueueManager`'s
    store-and-forward transport towards the believed primary.  Until the
    primary is known, messages are buffered.  On a role-change
    notification the client re-targets both buffered and in-flight
    (unacknowledged) messages — the "non-delivery is detected and
    retried" behaviour.

    With ``mirror=(node, queue)`` set, every message is *also* logged to
    that queue at send time (sender-based message logging, arxiv
    0911.3092): unlike the pair-side inbox journal, the mirror survives
    total pair loss, so a disaster-recovery site can replay it.  Mirror
    copies go out immediately even while the primary is unknown and the
    original sits in the buffer.
    """

    def __init__(
        self,
        node: NetNode,
        qmgr: QueueManager,
        unit: str,
        pair_nodes: List[str],
        trace: Optional[TraceLog] = None,
        mirror: Optional[Tuple[str, str]] = None,
    ) -> None:
        self.node = node
        self.qmgr = qmgr
        self.unit = unit
        self.pair_nodes = list(pair_nodes)
        self.trace = trace if trace is not None else TraceLog()
        self.primary: Optional[str] = None
        self.queue_name = inbox_queue_name(unit)
        self.mirror = mirror
        self._buffer: List[Any] = []
        self.sent_count = 0
        self.mirrored_count = 0
        self.redirect_count = 0
        self.role_changes_seen = 0
        self._listeners: List[Callable[[str], None]] = []
        node.bind(DIVERTER_PORT, self._on_notice)

    # -- primary tracking ----------------------------------------------------------

    def _on_notice(self, message: Message) -> None:
        payload = message.payload
        if payload.get("kind") != "role-change":
            return
        if payload["node"] not in self.pair_nodes:
            return
        self.role_changes_seen += 1
        if payload["role"] == "primary":
            self._set_primary(payload["node"])
        elif payload["role"] == "backup" and self.primary == payload["node"]:
            # Demotion notice: the peer should announce itself shortly;
            # until then we have no primary.
            self.primary = None

    def _set_primary(self, node_name: str) -> None:
        previous = self.primary
        self.primary = node_name
        if previous == node_name:
            return
        self.trace.emit("diverter", self.node.name, "primary-changed", old=previous, new=node_name)
        if previous is not None:
            # Re-target messages still waiting on an ack from the old node.
            self.redirect_count += self.qmgr.redirect_pending(previous, node_name)
        self._flush_buffer()
        for listener in self._listeners:
            listener(node_name)

    def on_primary_change(self, listener: Callable[[str], None]) -> None:
        """Register a callback fired when the believed primary changes."""
        # Registration API, not an event handler (despite the on_ name):
        # one append per listener registered at setup, bounded by callers.
        self._listeners.append(listener)  # oftt-lint: ok[unbounded-growth]

    # -- sending ------------------------------------------------------------------------

    def send(self, body: Any, label: str = "") -> None:
        """Send *body* to the logical unit (buffered until primary known)."""
        if self.mirror is not None:
            mirror_node, mirror_queue = self.mirror
            self.qmgr.send(
                mirror_node, mirror_queue, {"kind": "msg", "body": body}, persistent=True, label="dr-log"
            )
            self.mirrored_count += 1
        if self.primary is None:
            self._buffer.append((body, label))
            return
        self.qmgr.send(self.primary, self.queue_name, body, persistent=True, label=label)
        self.sent_count += 1

    def _flush_buffer(self) -> None:
        if self.primary is None:
            return
        buffered, self._buffer = self._buffer, []
        for body, label in buffered:
            self.qmgr.send(self.primary, self.queue_name, body, persistent=True, label=label)
            self.sent_count += 1

    @property
    def buffered_count(self) -> int:
        """Messages waiting for a known primary."""
        return len(self._buffer)

    def __repr__(self) -> str:
        return f"DiverterClient({self.unit} from {self.node.name}, primary={self.primary})"
