"""Clean twin of hot003: a set gives O(1) membership, no scan."""


class Hot:
    def __init__(self):
        self.seen = set()

    def note(self, key):
        self.seen.add(key)

    def run(self, key):
        if key in self.seen:
            return True
        self.note(key)
        return False
