"""Applying faults to a scenario environment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.faults.faultlib import Fault
from repro.simnet.kernel import SimKernel
from repro.simnet.trace import TraceLog


@dataclass
class InjectedFault:
    """Book-keeping for one injected fault."""

    fault: Fault
    at: float
    applied: bool = False


class FaultInjector:
    """Schedules and applies faults against one environment.

    The environment is duck-typed; see :mod:`repro.faults.faultlib` for
    the attributes faults expect (``systems``, ``network``, ``partitions``,
    ``pair``, ``fieldbuses``).
    """

    def __init__(self, kernel: SimKernel, env: Any, trace: Optional[TraceLog] = None) -> None:
        self.kernel = kernel
        self.env = env
        env_trace = getattr(env, "trace", None)
        self.trace = trace if trace is not None else (env_trace if env_trace is not None else TraceLog(clock=lambda: kernel.now))
        self.injected: List[InjectedFault] = []

    def inject_now(self, fault: Fault) -> InjectedFault:
        """Apply *fault* immediately."""
        record = InjectedFault(fault=fault, at=self.kernel.now)
        self._apply(record)
        return record

    def inject_at(self, at: float, fault: Fault) -> InjectedFault:
        """Apply *fault* at absolute simulated time *at*."""
        record = InjectedFault(fault=fault, at=at)
        delay = max(0.0, at - self.kernel.now)
        self.kernel.schedule(delay, self._apply, record)
        self.injected.append(record)
        return record

    def _apply(self, record: InjectedFault) -> None:
        self.trace.emit("fault", "injector", "inject", fault=record.fault.describe(), demo=record.fault.demo_id)
        record.fault.apply(self.env)
        record.applied = True
        if record not in self.injected:
            # Campaign-lifetime fault record, bounded by the schedule;
            # reports and ddmin read it back after the run.
            self.injected.append(record)  # oftt-lint: ok[unbounded-growth]

    def applied_faults(self) -> List[InjectedFault]:
        """Faults that have actually fired so far."""
        return [record for record in self.injected if record.applied]

    def __repr__(self) -> str:
        return f"FaultInjector({len(self.injected)} scheduled, {len(self.applied_faults())} applied)"
