"""Benchmark D-a..D-d: the four §4 failure demonstrations.

Paper claim: "the ability of the system to continue operating in the
presence of the following failures: a. node failure, b. NT crash (blue
screen of death), c. application software failure, d. OFTT Middleware
failure."

This harness runs all four against the Figure 3 testbed and reports, for
each: continued operation (the paper's qualitative claim), whether a
switchover happened, recovery latency, detection latency, and telephone
events lost.
"""

from repro.harness.experiments import exp_failover_demos

from benchmarks.conftest import print_rows


def test_bench_failover_demos(benchmark):
    rows = benchmark.pedantic(lambda: exp_failover_demos(seed=5), rounds=1, iterations=1)
    print_rows("D-a..d: §4 failure demonstrations (Figure 3 testbed)", rows)
    assert all(row["continued_operation"] for row in rows)
    assert [row["demo"] for row in rows] == ["a", "b", "c", "d"]
    # Switchover demos complete within ~1 heartbeat timeout + promotion.
    for row in rows:
        assert row["recovery_ms"] is not None and row["recovery_ms"] < 5_000.0
