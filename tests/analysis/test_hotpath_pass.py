"""Unit tests for the hotpath pass: manifest, propagation, rules, CLI."""

from __future__ import annotations

import os

import pytest

from repro.analysis import cli, hotpath
from repro.analysis.findings import AnalysisError
from repro.analysis.hotpath import RootSpec
from repro.analysis.walker import load_sources, run_passes


def _lint(tmp_path, source, roots, max_k=2, name="mod.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    files, load_findings = load_sources([str(path)])
    assert load_findings == []
    return hotpath.run_with_roots(files, roots, max_k)


PROPAGATION_SOURCE = '''
import math


class Widget:
    def entry(self):
        return self._middle()

    def _middle(self):
        return self._leaf()

    def _leaf(self):
        return math.sqrt(2.0)


class Bystander:
    def entry(self):
        return math.sqrt(2.0)
'''


def test_hotness_propagates_two_hops_below_root(tmp_path):
    findings = _lint(tmp_path, PROPAGATION_SOURCE, [RootSpec("mod", "Widget.entry")])
    assert [f.rule.rule_id for f in findings] == ["HOT006"]
    # anchored in the leaf helper, with the route in the message
    assert findings[0].line == 13
    assert "hot via Widget.entry -> Widget._middle -> Widget._leaf" in findings[0].message


def test_same_code_outside_any_hot_root_is_not_flagged(tmp_path):
    # Bystander.entry is byte-identical hot-path-hostile code, but no
    # root reaches it: zero findings.
    findings = _lint(tmp_path, PROPAGATION_SOURCE, [RootSpec("mod", "Widget.entry")])
    assert all("Bystander" not in f.message for f in findings)
    assert len(findings) == 1


def test_max_k_bounds_the_propagation(tmp_path):
    # With k=1 the leaf (two hops down) is outside the budget.
    findings = _lint(tmp_path, PROPAGATION_SOURCE, [RootSpec("mod", "Widget.entry")], max_k=1)
    assert findings == []


def test_declared_root_itself_is_checked(tmp_path):
    source = "import math\n\n\nclass Hot:\n    def run(self):\n        return math.sqrt(2.0)\n"
    findings = _lint(tmp_path, source, [RootSpec("mod", "Hot.run")])
    assert [f.rule.rule_id for f in findings] == ["HOT006"]
    assert "declared hot root" in findings[0].message


def test_unmatched_roots_are_inert(tmp_path):
    findings = _lint(tmp_path, PROPAGATION_SOURCE, [RootSpec("elsewhere", "Widget.entry")])
    assert findings == []


def test_module_suffix_matching(tmp_path):
    # The analysed module name is a long dotted path ending in ".mod";
    # the spec only names the suffix.
    findings = _lint(tmp_path, PROPAGATION_SOURCE, [RootSpec("mod", "Widget.entry")])
    assert findings != []


def test_suppression_comment_silences_hot_finding(tmp_path):
    source = (
        "import math\n\n\nclass Hot:\n    def run(self):\n"
        "        return math.sqrt(2.0)  # oftt-lint: ok[hot-ambient-relookup]\n"
    )
    path = tmp_path / "mod.py"
    path.write_text(source, encoding="utf-8")
    files, _ = load_sources([str(path)])
    roots = [RootSpec("mod", "Hot.run")]
    findings = run_passes(files, [lambda fs: hotpath.run_with_roots(fs, roots)])
    assert findings == []


def test_invariant_self_attr_reread_in_loop_is_flagged(tmp_path):
    source = '''
class Hot:
    def __init__(self):
        self.limit = 10

    def run(self, values):
        total = 0
        for value in values:
            if value < self.limit:
                total += self.limit
        return total
'''
    findings = _lint(tmp_path, source, [RootSpec("mod", "Hot.run")])
    assert [f.rule.rule_id for f in findings] == ["HOT006"]
    assert "self.limit" in findings[0].message


def test_self_attr_mutated_outside_init_is_not_invariant(tmp_path):
    # `limit` is rebound by another method, so binding it to a local
    # before the loop would be a behaviour change — no finding.
    source = '''
class Hot:
    def __init__(self):
        self.limit = 10

    def grow(self):
        self.limit = self.limit * 2

    def run(self, values):
        total = 0
        for value in values:
            if value < self.limit:
                total += self.limit
        return total
'''
    findings = _lint(tmp_path, source, [RootSpec("mod", "Hot.run")])
    assert findings == []


# -- manifest parsing ------------------------------------------------------


def test_manifest_parses_comments_and_suffix_specs(tmp_path):
    manifest = tmp_path / "roots.manifest"
    manifest.write_text(
        "# comment line\n"
        "\n"
        "repro.simnet.kernel:SimKernel.run  # trailing comment\n"
        "trace:TraceLog.emit\n",
        encoding="utf-8",
    )
    specs = hotpath.load_manifest(str(manifest))
    assert specs == [
        RootSpec("repro.simnet.kernel", "SimKernel.run"),
        RootSpec("trace", "TraceLog.emit"),
    ]


def test_manifest_rejects_malformed_lines(tmp_path):
    manifest = tmp_path / "roots.manifest"
    manifest.write_text("no-colon-here\n", encoding="utf-8")
    with pytest.raises(AnalysisError, match="bad hot-root spec"):
        hotpath.load_manifest(str(manifest))


def test_manifest_missing_file_is_a_usage_error(tmp_path):
    with pytest.raises(AnalysisError, match="cannot read"):
        hotpath.load_manifest(str(tmp_path / "nope.manifest"))


def test_default_manifest_is_checked_in_and_parses():
    specs = hotpath.load_manifest(hotpath.DEFAULT_MANIFEST)
    qualnames = {spec.qualname for spec in specs}
    assert "SimKernel.run" in qualnames
    assert "TraceLog.emit" in qualnames
    assert "TraceRecord.fingerprint" in qualnames


# -- CLI integration -------------------------------------------------------


def test_cli_hotpath_flag_runs_the_pass(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text(
        "import math\n\n\nclass Hot:\n    def run(self):\n        return math.sqrt(2.0)\n",
        encoding="utf-8",
    )
    manifest = tmp_path / "roots.manifest"
    manifest.write_text("mod:Hot.run\n", encoding="utf-8")
    code = cli.main(
        [
            str(target),
            "--passes", "hot",
            "--hotpath",
            "--hot-manifest", str(manifest),
            "--strict",
            "--no-cache",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1  # warnings gate under --strict
    assert "HOT006" in out


def test_cli_dogfood_hotpath_is_clean_over_src():
    # The acceptance bar: the shipped manifest over src/repro yields
    # zero unsuppressed hot findings (fixed or annotated reviewed-benign).
    files, load_findings = load_sources([os.path.join("src", "repro")])
    assert load_findings == []
    findings = run_passes(files, [hotpath.run])
    assert findings == []
