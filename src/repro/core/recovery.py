"""Recovery management: transient vs permanent failure decisions.

"How to recover from a detected failure is controlled by the recovery
rule that specifies whether to initiate a local recovery (e.g., a
transient fault), or to transfer control to the backup node (e.g., a
permanent fault)" (§2.2.1).

:class:`RecoveryManager` keeps per-component failure history and converts
each failure event into a :class:`~repro.core.config.RecoveryAction`
according to the configured rule: up to ``max_local_restarts`` failures
inside the ``transient_window`` are handled locally; beyond that the rule
escalates (normally to failover).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List

from repro.core.config import OfttConfig, RecoveryAction, RecoveryRule
from repro.simnet.kernel import SimKernel


@dataclass
class RecoveryDecision:
    """The outcome of one failure event."""

    component: str
    action: RecoveryAction
    restart_number: int  # which local attempt this is (0 when not local)
    delay: float  # how long to wait before acting
    reason: str


@dataclass
class _History:
    """Recent failure times for one component."""

    failures: List[float] = field(default_factory=list)


class RecoveryManager:
    """Applies recovery rules to failure events."""

    def __init__(self, kernel: SimKernel, config: OfttConfig) -> None:
        self.kernel = kernel
        self.config = config
        self._history: Dict[str, _History] = {}
        #: Ring buffer of recent decisions: soak campaigns run long enough
        #: that an unbounded list is a real leak, and nothing needs more
        #: history than the configured window.
        self.decisions: Deque[RecoveryDecision] = deque(maxlen=config.decision_log_limit)

    def set_rule(self, component: str, rule: RecoveryRule) -> None:
        """Dynamic rule change (the paper's run-time option).

        Mutates the *shared* config's rule table in place.  Rebinding
        ``self.config`` to a modified copy (the old behaviour) silently
        desynced this manager from the engine that constructed it: after
        one dynamic rule change the two disagreed on every subsequently
        edited setting.  Both pair nodes hold the same config object, so
        a run-time rule change is deployment-wide — matching the paper's
        model of one recovery policy per logical unit.
        """
        self.config.recovery_rules[component] = rule

    def on_failure(self, component: str, reason: str) -> RecoveryDecision:
        """Record a failure and decide what to do about it."""
        rule = self.config.rule_for(component)
        history = self._history.setdefault(component, _History())
        now = self.kernel.now
        cutoff = now - rule.transient_window
        history.failures = [t for t in history.failures if t >= cutoff]
        history.failures.append(now)
        recent = len(history.failures)
        if recent <= rule.max_local_restarts:
            decision = RecoveryDecision(
                component=component,
                action=RecoveryAction.LOCAL_RESTART,
                restart_number=recent,
                delay=rule.restart_delay,
                reason=reason,
            )
        else:
            decision = RecoveryDecision(
                component=component,
                action=rule.escalation,
                restart_number=0,
                delay=0.0,
                reason=f"{reason} (local restarts exhausted: {recent - 1} in window)",
            )
        self.decisions.append(decision)
        return decision

    def clear(self, component: str) -> None:
        """Forget a component's failure history (after stable recovery)."""
        self._history.pop(component, None)

    def failure_count(self, component: str) -> int:
        """Failures currently inside the component's window.

        Prunes with the same ``t >= cutoff`` predicate as
        :meth:`on_failure`; without this, callers polling between events
        saw phantom failures that had already aged out of the window.
        """
        history = self._history.get(component)
        if history is None:
            return 0
        cutoff = self.kernel.now - self.config.rule_for(component).transient_window
        history.failures = [t for t in history.failures if t >= cutoff]
        return len(history.failures)

    def __repr__(self) -> str:
        return f"RecoveryManager(decisions={len(self.decisions)})"
