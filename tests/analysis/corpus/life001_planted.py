"""Planted LIFE001: timer handle stored on self, stop() never cancels."""


class Looper:
    def __init__(self, kernel):
        self.kernel = kernel
        self.period = 100.0
        self._timer = None
        self.ticks = 0

    def start(self):
        self._timer = self.kernel.schedule(self.period, self._tick)  # expect: LIFE001

    def stop(self):
        self.ticks = 0  # forgets the armed timer

    def _tick(self):
        self.ticks += 1
