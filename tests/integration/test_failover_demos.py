"""Integration tests: the four §4 failure demonstrations.

Each reproduces one demo case end to end on the Figure 3 testbed and
asserts the paper's qualitative claim — "the ability of the system to
continue operating in the presence of [the] failure" — plus the
quantitative properties our instrumented build makes checkable: bounded
recovery latency and zero lost telephone events.
"""

import pytest

from repro.faults import AppCrash, BlueScreen, MiddlewareCrash, NodeFailure
from repro.faults.campaign import Campaign
from repro.harness.scenario import build_demo
from repro.metrics import failover_timing


def run_demo(make_fault, seed=11, warmup=20_000.0, after=15_000.0):
    demo = build_demo(seed=seed)
    demo.start()
    demo.run_for(warmup)
    primary = demo.pair.primary_node()
    fault_time = demo.kernel.now
    campaign = Campaign(demo.kernel, demo, settle_timeout=20_000.0)
    record = campaign.run_fault(make_fault(primary))
    demo.run_for(after)
    return demo, primary, fault_time, record


def assert_no_event_loss(demo):
    app = demo.primary_app()
    assert app is not None
    assert app.events_processed() == demo.history.event_count
    assert app.histogram() == demo.history.histogram()


def test_demo_a_node_failure():
    demo, old_primary, fault_time, record = run_demo(lambda node: NodeFailure(node))
    assert record.recovered
    assert record.switched_over
    new_primary = demo.pair.primary_node()
    timing = failover_timing(demo.trace, fault_time, new_primary)
    assert timing.failover_latency is not None
    assert timing.failover_latency < 2_000.0
    assert_no_event_loss(demo)


def test_demo_b_nt_crash():
    demo, old_primary, fault_time, record = run_demo(lambda node: BlueScreen(node))
    assert record.recovered
    assert record.switched_over
    assert demo.systems[old_primary].state.value == "bluescreen"
    assert_no_event_loss(demo)


def test_demo_c_application_failure():
    demo, old_primary, _fault_time, record = run_demo(lambda node: AppCrash(node, "calltrack"))
    assert record.recovered
    # The default rule restarts locally first: same node keeps primary.
    assert not record.switched_over
    assert demo.pair.primary_node() == old_primary
    assert_no_event_loss(demo)


def test_demo_d_middleware_failure():
    demo, old_primary, fault_time, record = run_demo(lambda node: MiddlewareCrash(node))
    assert record.recovered
    assert record.switched_over
    # The orphaned copy was fail-stopped; only the new primary runs.
    assert demo.pair.running_app_nodes() == [demo.pair.primary_node()]
    assert demo.pair.primary_node() != old_primary
    # Demo (d) has an inherent, bounded loss window: events the old copy
    # processed after its engine died cannot be checkpointed (there is no
    # engine to ship the checkpoint).  The window is one FTIM heartbeat
    # period, so at most a couple of events.
    app = demo.primary_app()
    lost = demo.history.event_count - app.events_processed()
    assert 0 <= lost <= 3


def test_all_four_demos_in_sequence_with_repairs():
    """The full §4 session: a, b, c, d back-to-back with repairs."""
    from repro.harness.experiments import exp_failover_demos

    rows = exp_failover_demos(seed=13)
    assert [row["demo"] for row in rows] == ["a", "b", "c", "d"]
    assert all(row["continued_operation"] for row in rows)
    # Demos a-c lose nothing (diverter retry + event-based checkpoints);
    # demo (d) has the bounded engine-death window (see test above).
    assert all(row["events_lost"] == 0 for row in rows if row["demo"] != "d")
    assert all(row["events_lost"] <= 3 for row in rows)
    # Node-level failures (a, b, d) switch over; the transient app crash
    # (c) recovers in place.
    assert [row["switched_over"] for row in rows] == [True, True, False, True]


def test_recovered_histogram_matches_ground_truth_exactly():
    """The Call Track state invariant: after any single failover the
    histogram equals the Calling History generator's ground truth."""
    demo, _old, _t, record = run_demo(lambda node: NodeFailure(node), seed=29)
    assert record.recovered
    app = demo.primary_app()
    assert app.histogram() == demo.history.histogram()
    state = app.state()
    counts = demo.history.counts()
    assert state["total_calls"] == counts["total_calls"]
    assert state["blocked_calls"] == counts["blocked_calls"]
