"""Unit tests for the telephone system simulator (§4 workload)."""

from repro.devices.telephone import CallEvent, TelephoneSystem

from tests.conftest import make_world


def make_phone(seed=0, **kwargs):
    world = make_world(seed)
    phone = TelephoneSystem(world.kernel, world.rngs.stream("phone"), **kwargs)
    return world, phone


def test_busy_lines_never_exceed_line_count():
    world, phone = make_phone(lines=5, callers=10)
    phone.start()
    world.run(300_000.0)
    assert phone.events
    assert all(0 <= event.busy_lines <= 5 for event in phone.events)


def test_event_sequences_strictly_increasing():
    world, phone = make_phone()
    phone.start()
    world.run(120_000.0)
    sequences = [event.sequence for event in phone.events]
    assert sequences == sorted(sequences)
    assert len(set(sequences)) == len(sequences)


def test_start_end_pairing():
    world, phone = make_phone()
    phone.start()
    world.run(200_000.0)
    starts = sum(1 for e in phone.events if e.kind == "start")
    ends = sum(1 for e in phone.events if e.kind == "end")
    # Every completed call started; at most `lines` calls still in flight.
    assert 0 <= starts - ends <= phone.line_count
    assert phone.completed_count == ends


def test_blocking_happens_under_offered_load():
    """10 callers on 5 lines with call time ~ idle time must block some
    attempts (Erlang-B loss behaviour)."""
    world, phone = make_phone(seed=3, mean_idle=2_000.0, mean_call=4_000.0)
    phone.start()
    world.run(400_000.0)
    assert phone.blocked_count > 0
    blocked_events = [e for e in phone.events if e.kind == "blocked"]
    assert all(e.busy_lines == phone.line_count for e in blocked_events)
    assert all(e.line == -1 for e in blocked_events)


def test_histogram_accounts_every_event():
    world, phone = make_phone()
    phone.start()
    world.run(150_000.0)
    histogram = phone.busy_histogram()
    assert sum(histogram.values()) == len(phone.events)


def test_deterministic_for_seed():
    world_a, phone_a = make_phone(seed=7)
    phone_a.start()
    world_a.run(60_000.0)
    world_b, phone_b = make_phone(seed=7)
    phone_b.start()
    world_b.run(60_000.0)
    assert [e.sequence for e in phone_a.events] == [e.sequence for e in phone_b.events]
    assert phone_a.busy_histogram() == phone_b.busy_histogram()


def test_listeners_receive_all_events():
    world, phone = make_phone()
    seen = []
    phone.add_listener(seen.append)
    phone.start()
    world.run(60_000.0)
    assert seen == phone.events


def test_event_wire_roundtrip():
    event = CallEvent(kind="start", caller=3, line=1, time=10.0, busy_lines=2, sequence=5)
    assert CallEvent.from_wire(event.as_wire()) == event


def test_stop_frees_lines_and_halts():
    world, phone = make_phone()
    phone.start()
    world.run(30_000.0)
    phone.stop()
    count = len(phone.events)
    world.run(60_000.0)
    assert len(phone.events) == count
    assert phone.busy_lines == 0
