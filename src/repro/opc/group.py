"""OPC groups: subscription units with update rate and deadband.

A client adds items to a group, registers a data-change sink, and receives
batched ``OnDataChange`` notifications no faster than the group's update
rate; analogue changes smaller than the deadband are suppressed.  The sink
is either a local callable (in-proc client) or an
:class:`~repro.com.marshal.ObjRef` to a remote callback object, reached
via a DCOM one-way call.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.com.interfaces import declare_interface
from repro.com.marshal import ObjRef
from repro.com.object import ComObject
from repro.com.hresult import CONNECT_E_NOCONNECTION, OPC_E_INVALIDHANDLE
from repro.errors import OpcError
from repro.opc.types import OpcValue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.opc.server import OpcServer

IOPC_GROUP = declare_interface(
    "IOPCGroupStateMgt",
    ("AddItems", "RemoveItems", "SetActive", "SyncRead", "SyncWrite", "SetDataCallback", "GetState"),
)

IOPC_ASYNC_IO = declare_interface("IOPCAsyncIO2", ("AsyncRead", "AsyncWrite"), base=IOPC_GROUP)

IOPC_DATA_CALLBACK = declare_interface(
    "IOPCDataCallback", ("OnDataChange", "OnReadComplete", "OnWriteComplete")
)

# A local sink: callback(group_name, [(client_handle, item_id, wire_value), ...])
LocalSink = Callable[[str, List[Tuple[int, str, dict]]], None]


class OpcGroup(ComObject):
    """One subscription group inside an :class:`OpcServer`."""

    IMPLEMENTS = (IOPC_ASYNC_IO,)
    #: Simulated device-read turnaround for async operations.
    ASYNC_LATENCY = 20.0

    #: How often the server pings a remote sink (DCOM-style GC).
    PING_PERIOD = 5_000.0
    #: Consecutive failed pings before the group is collected.
    PING_STRIKES = 2

    def __init__(self, server: "OpcServer", name: str, update_rate: float = 100.0, deadband: float = 0.0) -> None:
        super().__init__()
        self.server = server
        self.name = name
        self.update_rate = update_rate
        self.deadband = deadband  # percent of value span, 0 disables
        self.active = True
        # Handles and transaction ids are scoped to this group instance
        # (clients never mix them across groups), so per-instance counters
        # are safe — and unlike class-level ones they don't carry state
        # between scenarios in a single Python process, which made
        # identical-seed runs hand out different handles.
        self._handle_counter = itertools.count(1)
        self._transaction_counter = itertools.count(1)
        self.items: Dict[int, str] = {}  # client handle -> item id
        self._last_sent: Dict[int, OpcValue] = {}
        self._pending: Dict[int, OpcValue] = {}
        self._sink_local: Optional[LocalSink] = None
        self._sink_remote: Optional[ObjRef] = None
        self._flush_armed = False
        self._ping_strikes = 0
        self._ping_armed = False
        self.collected = False
        self.notifications_sent = 0

    # -- item management ---------------------------------------------------------

    def AddItems(self, item_ids: List[str]) -> List[int]:
        """Register items; returns one client handle per item id."""
        handles = []
        for item_id in item_ids:
            self.server.namespace.definition(item_id)  # validate
            handle = next(self._handle_counter)
            self.items[handle] = item_id
            handles.append(handle)
        return handles

    def RemoveItems(self, handles: List[int]) -> None:
        """Drop items by client handle (unknown handles are errors)."""
        for handle in handles:
            if handle not in self.items:
                raise OpcError(f"group {self.name}: unknown handle {handle}", hresult=OPC_E_INVALIDHANDLE)
            del self.items[handle]
            self._last_sent.pop(handle, None)
            self._pending.pop(handle, None)

    def SetActive(self, active: bool) -> None:
        """Enable or disable change notifications."""
        self.active = bool(active)

    def GetState(self) -> dict:
        """Group state snapshot (IOPCGroupStateMgt::GetState)."""
        return {
            "name": self.name,
            "update_rate": self.update_rate,
            "deadband": self.deadband,
            "active": self.active,
            "item_count": len(self.items),
        }

    # -- synchronous access ---------------------------------------------------------

    def SyncRead(self, handles: List[int]) -> List[dict]:
        """Read current cached values for *handles* (wire form)."""
        result = []
        for handle in handles:
            if handle not in self.items:
                raise OpcError(f"group {self.name}: unknown handle {handle}", hresult=OPC_E_INVALIDHANDLE)
            result.append(self.server.namespace.read(self.items[handle]).as_wire())
        return result

    def SyncWrite(self, writes: List[Tuple[int, Any]]) -> None:
        """Write values through to the device hooks."""
        for handle, value in writes:
            if handle not in self.items:
                raise OpcError(f"group {self.name}: unknown handle {handle}", hresult=OPC_E_INVALIDHANDLE)
            self.server.namespace.client_write(self.items[handle], value)

    # -- asynchronous access (IOPCAsyncIO2) ---------------------------------------

    def AsyncRead(self, handles: List[int]) -> int:
        """Start an asynchronous read of *handles*.

        Returns a transaction id immediately; after the simulated device
        turnaround the sink's ``OnReadComplete`` fires with
        ``(group, transaction_id, [(handle, item_id, wire_value), ...])``.
        Requires a data callback to be registered.
        """
        if self._sink_local is None and self._sink_remote is None:
            raise OpcError(f"group {self.name}: AsyncRead without a data callback", hresult=CONNECT_E_NOCONNECTION)
        for handle in handles:
            if handle not in self.items:
                raise OpcError(f"group {self.name}: unknown handle {handle}", hresult=OPC_E_INVALIDHANDLE)
        transaction_id = next(self._transaction_counter)
        self.server.kernel.schedule(self.ASYNC_LATENCY, self._complete_read, list(handles), transaction_id)
        return transaction_id

    def AsyncWrite(self, writes: List[Any]) -> int:
        """Start an asynchronous write; ``OnWriteComplete`` carries the
        transaction id and per-handle success flags."""
        if self._sink_local is None and self._sink_remote is None:
            raise OpcError(f"group {self.name}: AsyncWrite without a data callback", hresult=CONNECT_E_NOCONNECTION)
        transaction_id = next(self._transaction_counter)
        self.server.kernel.schedule(self.ASYNC_LATENCY, self._complete_write, list(writes), transaction_id)
        return transaction_id

    def _complete_read(self, handles: List[int], transaction_id: int) -> None:
        if self.collected:
            return
        batch = []
        for handle in handles:
            item_id = self.items.get(handle)
            if item_id is None:
                continue  # removed while the read was in flight
            batch.append((handle, item_id, self.server.namespace.read(item_id).as_wire()))
        self._dispatch("OnReadComplete", (self.name, transaction_id, [list(entry) for entry in batch]))

    def _complete_write(self, writes: List[Any], transaction_id: int) -> None:
        if self.collected:
            return
        outcomes = []
        for handle, value in writes:
            item_id = self.items.get(handle)
            if item_id is None:
                outcomes.append([handle, False])
                continue
            try:
                self.server.namespace.client_write(item_id, value)
                outcomes.append([handle, True])
            except OpcError:
                outcomes.append([handle, False])
        self._dispatch("OnWriteComplete", (self.name, transaction_id, outcomes))

    def _dispatch(self, method: str, args: tuple) -> None:
        if self._sink_local is not None:
            sink_owner = getattr(self._sink_local, "__self__", None)
            if sink_owner is not None and hasattr(sink_owner, method):
                getattr(sink_owner, method)(*args)
        elif self._sink_remote is not None:
            self.server.runtime.exporter.invoke_oneway(self._sink_remote, method, args)

    # -- subscriptions -----------------------------------------------------------------

    def SetDataCallback(self, sink: Any) -> None:
        """Attach the data-change sink: a callable (local) or ObjRef (remote).

        Remote sinks are pinged periodically (DCOM-style distributed GC):
        a sink whose hosting process or node has died gets its group
        collected, so orphaned subscriptions from crashed clients do not
        accumulate across failovers.
        """
        if callable(sink):
            self._sink_local = sink
            self._sink_remote = None
        elif isinstance(sink, ObjRef):
            self._sink_remote = sink
            self._sink_local = None
            self._ping_strikes = 0
            self._arm_ping()
        else:
            raise OpcError(f"unsupported callback sink {type(sink).__name__}")

    def clear_callback(self) -> None:
        """Detach any sink."""
        self._sink_local = None
        self._sink_remote = None

    # -- remote-sink liveness (DCOM ping GC) ----------------------------------

    def _arm_ping(self) -> None:
        if self._ping_armed or self.collected:
            return
        self._ping_armed = True
        self.server.kernel.schedule(self.PING_PERIOD, self._ping_sink)

    def _ping_sink(self) -> None:
        self._ping_armed = False
        if self.collected or self._sink_remote is None:
            return
        ping = self.server.runtime.exporter.check_liveness(self._sink_remote)
        ping.add_callback(self._on_ping_result)

    # Ping-GC teardown vs in-flight completions at the same tick is
    # reviewed-benign: _collect -> clear_callback clears the sinks and
    # sets `collected`, and every completion path (_complete_read/
    # _complete_write -> _dispatch, _ping_sink) re-checks both before
    # touching them.  Whichever side the seq tiebreak runs first, the
    # outcome is a valid protocol state and deterministic per seed.
    def _on_ping_result(self, waitable: Any) -> None:  # oftt-lint: ok[ip-race-write-read,ip-race-write-write]
        if self.collected or self._sink_remote is None:
            return
        result = waitable.value
        if result.ok and result.value:
            self._ping_strikes = 0
        else:
            self._ping_strikes += 1
            if self._ping_strikes >= self.PING_STRIKES:
                self._collect()
                return
        self._arm_ping()

    def _collect(self) -> None:
        """The sink is gone: tear this group down server-side."""
        self.collected = True
        self.clear_callback()
        self.server._on_group_collected(self.name)

    def _on_item_update(self, item_id: str, new_value: OpcValue) -> None:
        """Called by the server whenever the namespace cache changes."""
        if not self.active or (self._sink_local is None and self._sink_remote is None):
            return
        # Sorted by handle so the pending-update fan-out is ordered by a
        # stable key rather than dict insertion history (which add/remove
        # churn — or a restore path rebuilding the group — could reorder).
        for handle in sorted(self.items):
            subscribed_id = self.items[handle]
            if subscribed_id != item_id:
                continue
            if self._within_deadband(handle, new_value):
                continue
            self._pending[handle] = new_value
        if self._pending and not self._flush_armed:
            self._flush_armed = True
            self.server.kernel.schedule(self.update_rate, self._flush)

    def _within_deadband(self, handle: int, new_value: OpcValue) -> bool:
        if self.deadband <= 0:
            return False
        last = self._last_sent.get(handle)
        if last is None or last.quality != new_value.quality:
            return False
        if not isinstance(new_value.value, (int, float)) or not isinstance(last.value, (int, float)):
            return new_value.value == last.value
        span = max(abs(last.value), abs(new_value.value), 1e-9)
        return abs(new_value.value - last.value) / span * 100.0 < self.deadband

    def _flush(self) -> None:
        self._flush_armed = False
        if not self._pending:
            return
        batch = []
        for handle, value in sorted(self._pending.items()):
            self._last_sent[handle] = value
            batch.append((handle, self.items.get(handle, ""), value.as_wire()))
        self._pending.clear()
        self.notifications_sent += 1
        if self._sink_local is not None:
            self._sink_local(self.name, batch)
        elif self._sink_remote is not None:
            self.server.runtime.exporter.invoke_oneway(
                self._sink_remote, "OnDataChange", (self.name, [list(entry) for entry in batch])
            )

    def __repr__(self) -> str:
        return f"OpcGroup({self.name}, items={len(self.items)}, rate={self.update_rate})"
