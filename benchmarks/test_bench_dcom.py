"""Benchmark X6: DCOM's RPC failure behaviour vs OFTT detection.

Paper complaint (§3.3): "the DCOM does not have a well-defined built-in
fault tolerance infrastructure.  For example, its RPC service does not
behave well in the presence of failures, and additional design efforts
have to be made in order to compensate for the deficiency."

This harness measures how long a client takes to learn its server died:
(1) raw DCOM call against a dead node — silence until the long RPC
timeout; (2) raw DCOM call against a dead process — fast
RPC_E_DISCONNECTED; (3) the OFTT compensation — heartbeat detection well
inside the RPC timeout, followed by failover.

Expected shape: OFTT detection beats the dead-node RPC path by the ratio
of heartbeat timeout to RPC timeout (4x with defaults).
"""

from repro.harness.experiments import exp_dcom

from benchmarks.conftest import print_block


def test_bench_dcom_failure_behaviour(benchmark):
    result = benchmark.pedantic(lambda: exp_dcom(seed=19), rounds=1, iterations=1)
    print_block("X6: time for a client to learn its server died", result)
    assert result["dead_node_rpc_latency_ms"] >= result["rpc_timeout_config_ms"]
    assert result["dead_process_latency_ms"] < 100.0
    assert result["oftt_detection_latency_ms"] < result["dead_node_rpc_latency_ms"] / 2
