"""Unit tests for the fault tolerance interface modules."""

import pytest

from repro.core.api import OfttApi
from repro.core.config import OfttConfig, replace_config
from repro.core.ftim import ClientFtim, ServerFtim
from repro.errors import CheckpointError
from repro.simnet.events import Timeout

from tests.core.util import make_pair_world


def started_pair(seed=0, config=None):
    world = make_pair_world(seed=seed, config=config)
    world.start()
    return world


def primary_bits(world):
    primary = world.primary
    app = world.pair.apps[primary]
    engine = world.pair.engines[primary]
    return primary, app, engine


def test_ftim_sends_heartbeats():
    world = started_pair()
    _primary, app, engine = primary_bits(world)
    world.run_for(2_000.0)
    assert app.api.ftim.heartbeats_sent >= 15
    assert engine.stats()["heartbeats_rx"] >= app.api.ftim.heartbeats_sent - 2


def test_client_ftim_checkpoints_periodically():
    world = started_pair()
    _primary, app, engine = primary_bits(world)
    world.run_for(5_500.0)
    # checkpoint_period defaults to 1000ms.
    assert 4 <= app.api.ftim.checkpoints_taken <= 7
    assert engine.local_store.latest("synthetic") is not None


def test_server_ftim_never_checkpoints():
    world = make_pair_world()
    world.start()
    primary = world.primary
    context = world.pair.contexts[primary]
    process = context.system.create_process("opc-srv")

    def idle_body(_thread):
        def loop():
            while True:
                yield Timeout(1_000.0)

        return loop()

    process.create_thread("main", body=idle_body, dynamic=False)
    process.start()
    ftim = ServerFtim(context.engine, "opc-srv", process)
    world.run_for(3_000.0)
    assert ftim.heartbeats_sent > 0
    assert ftim.TakeCheckpoint() is None
    assert ftim.GetStats()["kind"] == "server"


def test_selective_capture_restricts_image():
    world = started_pair()
    _primary, app, _engine = primary_bits(world)
    ftim = app.api.ftim
    checkpoint = ftim.capture()
    assert checkpoint.selective
    # Only designated hot variables + ticks, not the cold payload.
    assert all(not name.startswith("cold_") for name in checkpoint.image["globals"])
    assert "ticks" in checkpoint.image["globals"]


def test_full_capture_includes_everything_and_stacks():
    world = started_pair()
    _primary, app, _engine = primary_bits(world)
    ftim = app.api.ftim
    ftim.clear_selection()
    checkpoint = ftim.capture()
    assert not checkpoint.selective
    assert any(name.startswith("cold_") for name in checkpoint.image["globals"])
    assert any(region.startswith("stack:") for region in checkpoint.image)


def test_capture_includes_thread_contexts_from_both_paths():
    """Static threads come via EnumProcessThreads, dynamic ones via the
    IAT hook installed at OFTTInitialize."""
    world = started_pair()
    _primary, app, _engine = primary_bits(world)
    ftim = app.api.ftim
    # Create a dynamic thread through the (patched) Win32 API.
    ftim.kernel32.CreateThread("worker")
    checkpoint = ftim.capture()
    names = set(checkpoint.thread_contexts)
    assert "main" in names  # static
    assert "worker" in names  # dynamic, via IAT
    assert f"ftim:synthetic" in names


def test_capture_on_dead_process_fails():
    world = started_pair()
    _primary, app, _engine = primary_bits(world)
    app.process.kill()
    with pytest.raises(CheckpointError):
        app.api.ftim.capture()


def test_checkpoint_sequences_monotone():
    world = started_pair()
    _primary, app, _engine = primary_bits(world)
    first = app.api.ftim.TakeCheckpoint()
    second = app.api.ftim.TakeCheckpoint()
    assert second > first


def test_incremental_mode_shrinks_steady_state_checkpoints():
    world = started_pair()
    _primary, app, _engine = primary_bits(world)
    ftim = app.api.ftim
    ftim.clear_selection()
    ftim.incremental = True
    first = ftim.capture()  # full baseline
    world.run_for(120.0)  # a tick happens; hot vars change
    second = ftim.capture()
    assert not first.incremental
    assert second.incremental
    assert second.size_bytes() < first.size_bytes() / 2


def test_engine_death_failstops_application():
    """§4 demo (d) building block: FTIM kills its app when the engine
    process dies, preventing an unmonitored primary."""
    world = started_pair()
    primary, app, engine = primary_bits(world)
    engine.process.kill()
    world.run_for(1_000.0)
    assert not app.process.alive
    assert app.api.ftim.engine_lost


def test_stats_surface():
    world = started_pair()
    _primary, app, _engine = primary_bits(world)
    world.run_for(2_500.0)
    stats = app.api.ftim.GetStats()
    assert stats["kind"] == "client"
    assert stats["selective"]
    assert stats["heartbeats"] > 0
    assert stats["checkpoints"] >= 1
