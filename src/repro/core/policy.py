"""Adaptive fault-tolerance policy: the layer between detection and action.

The paper's engine wires detection (heartbeat silence, watchdog expiry,
process exit) straight into a *static* recovery rule (§2.2.1): N local
restarts inside a window, then escalate.  That is the right default, but
it leaves three failure shapes on the table:

* **Crash loops** burn every budgeted restart at full speed before
  escalating, even when the first two restarts already proved the fault
  is not transient.
* **Gray nodes** (§3.1's unreliable-signal world: delayed heartbeats,
  perfmon counters that cannot be trusted for liveness) trip the peer
  watch and cause spurious failovers, while genuinely hung components
  wait out the full default timeout.
* **Fault regimes drift**: the replication strategy chosen at install
  time is not the right one for every phase of a deployment's life.

:class:`AdaptivePolicy` closes these gaps with three cooperating parts:

1. *Self-healing restart governance* — exponential back-off between
   local restarts, a thrash detector that escalates a crash-looping
   component early, an escalation ladder (local restart → switchover →
   middleware reinstall), and history clearing after sustained
   stability so an old incident never taxes a new one.
2. *Anomaly-driven proactive failover* — :class:`FaultClassifier`
   consumes the heartbeat stream (miss-rate drift, inter-arrival skew)
   and :class:`~repro.nt.perfmon.PerfMon` counters to label the current
   fault regime; the policy re-tunes watch sensitivity per regime and
   can declare a component failed before its heartbeat timeout fires.
3. *Runtime strategy switching* — when the regime calls for a hotter
   standby the policy moves the live pair onto a different replication
   strategy through the engine's safe-handoff protocol, with a dwell
   time so regime flicker never turns into strategy flapping.

Everything here is gated on ``OfttConfig.adaptive_policy``: with the
flag off (the default) no policy object exists and the engine's traces
are byte-identical to the static-rule build.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from enum import Enum
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.core.config import RecoveryAction
from repro.core.recovery import RecoveryDecision
from repro.core.roles import Role
from repro.core.status import ComponentStatus
from repro.core.strategy import PEER
from repro.nt.perfmon import PerfMon

if TYPE_CHECKING:
    from repro.core.engine import OfttEngine


class FaultRegime(Enum):
    """Classifier verdict about the deployment's current fault shape."""

    HEALTHY = "healthy"
    #: Components are crashing repeatedly (or perfmon corroborates a
    #: vanished process): favour fast detection and hot standby.
    CRASHY = "transient-crashy"
    #: Peer heartbeats arrive but late/skewed — a gray node or link.
    #: Favour failover *suppression*: demand more evidence before
    #: declaring the peer dead.
    GRAY = "gray"
    #: Peer heartbeats have stopped entirely while the local node is
    #: otherwise fine.  Failover would demote into a void.
    PARTITIONED = "partitioned"


@dataclass
class PolicyDecision:
    """One entry in the policy's (ring-buffered) decision log."""

    time: float
    kind: str  # "recovery" | "regime" | "proactive" | "switch" | "clear"
    component: str
    detail: str


class FaultClassifier:
    """Labels the fault regime from heartbeat and perfmon evidence.

    Heartbeats are the primary signal (the paper's only trustworthy
    one); perfmon counters corroborate but never alone condemn — §3.1's
    finding is that NT perfmon lies about *identity* (thread start
    addresses all point into ntdll) yet its process/thread *counts* are
    usable as a second opinion.
    """

    def __init__(self, engine: "OfttEngine") -> None:
        self.engine = engine
        self.kernel = engine.kernel
        self.config = engine.config
        self.perfmon = PerfMon(engine.context.system)
        self.regime = FaultRegime.HEALTHY
        self._crash_events: List[float] = []
        self._gray_evidence_at: Optional[float] = None
        self._perfmon_anomaly_at: Optional[float] = None

    def note_component_failure(self, _component: str) -> None:
        """A component failure was handled; counts as crash evidence."""
        self._crash_events.append(self.kernel.now)

    def sample(self) -> None:
        """Refresh evidence from the heartbeat and perfmon streams."""
        now = self.kernel.now
        window = self.config.policy_anomaly_window
        self._crash_events = [t for t in self._crash_events if t >= now - window]
        # Latency skew: the largest recent beat-to-beat gap on the peer
        # channel.  A gap well past the send period with beats still
        # arriving is the gray-node signature — delay, not death.
        gap = self.engine.monitor.largest_gap(PEER)
        if gap is not None and gap > self.config.policy_gray_gap_factor * self.config.peer_heartbeat_period:
            self._gray_evidence_at = now
        if self.perfmon_missing():
            self._perfmon_anomaly_at = now

    def perfmon_missing(self) -> List[str]:
        """Components the engine believes RUNNING whose process has
        vanished from the perfmon process table (no exit hook fired)."""
        names = set(self.perfmon.process_names())
        missing = []
        for name in sorted(self.engine.components):
            record = self.engine.components[name]
            app = self.engine.applications.get(name)
            if app is None or record.status is not ComponentStatus.RUNNING:
                continue
            if not app.running and name not in names:
                missing.append(name)
        return missing

    def classify(self) -> FaultRegime:
        """Label the current regime (most constraining evidence wins)."""
        now = self.kernel.now
        window = self.config.policy_anomaly_window
        fresh = lambda at: at is not None and now - at <= window  # noqa: E731
        crashes = len(self._crash_events)
        crashy = crashes >= self.config.policy_crashy_threshold or (
            crashes >= 1 and fresh(self._perfmon_anomaly_at)
        )
        if not self.engine.peer_present:
            # Peer silence dominates: whatever else is wrong, failover
            # has nowhere to go, so act conservatively.
            self.regime = FaultRegime.PARTITIONED
        elif crashy:
            self.regime = FaultRegime.CRASHY
        elif fresh(self._gray_evidence_at):
            self.regime = FaultRegime.GRAY
        else:
            self.regime = FaultRegime.HEALTHY
        return self.regime


class AdaptivePolicy:
    """Regime-aware recovery governance for one engine.

    Sits between the engine's failure handler and the static
    :class:`~repro.core.recovery.RecoveryManager`: the manager still
    produces the baseline decision, the policy amends it (back-off,
    early escalation, deferral) and owns the periodic regime loop.
    """

    def __init__(self, engine: "OfttEngine") -> None:
        self.engine = engine
        self.kernel = engine.kernel
        self.config = engine.config
        self.classifier = FaultClassifier(engine)
        #: Ring-buffered audit log (same bound as RecoveryManager's).
        self.decisions: Deque[PolicyDecision] = deque(maxlen=self.config.decision_log_limit)
        #: Thrash/cooldown governor switch — chaos sabotage target
        #: ("disable-cooldown" proves the thrash monitor catches its loss).
        self.governor_enabled = True
        #: Escalation ladder stage per component: 0 = local restarts,
        #: 1 = switchover attempted, 2 = reinstall reached.
        self._stage: Dict[str, int] = {}
        self._recent: Dict[str, List[float]] = {}
        self._last_failure_at: Dict[str, float] = {}
        self._tuned_regime: Optional[FaultRegime] = None
        self._last_switch_at: Optional[float] = None
        self._running = False
        self._timer: Optional[int] = None

    # -- recovery governance ------------------------------------------------------

    def decide(self, component: str, reason: str) -> RecoveryDecision:
        """Amend the static rule's decision for one failure event."""
        base = self.engine.recovery.on_failure(component, reason)
        now = self.kernel.now
        cfg = self.config
        self.classifier.note_component_failure(component)
        self._last_failure_at[component] = now
        decision = base
        if self.governor_enabled:
            recent = self._recent.setdefault(component, [])
            recent[:] = [t for t in recent if t >= now - cfg.policy_thrash_window]
            recent.append(now)
            thrashing = len(recent) >= cfg.policy_thrash_threshold
            if base.action is RecoveryAction.LOCAL_RESTART:
                if thrashing:
                    # Crash loop: stop burning restarts, climb the ladder.
                    decision = self._escalate(
                        base,
                        f"{reason} (thrash: {len(recent)} failures in "
                        f"{cfg.policy_thrash_window:.0f}ms)",
                    )
                else:
                    # Exponential back-off between local attempts.
                    delay = min(
                        base.delay * cfg.policy_cooldown_backoff ** (base.restart_number - 1),
                        cfg.policy_cooldown_max,
                    )
                    decision = replace(base, delay=delay)
            elif base.action is RecoveryAction.FAILOVER:
                decision = self._escalate(base, base.reason)
        # Peer-stale deferral: a failover decided while the peer looks
        # stale would demote us into a void (the takeover message dies
        # on the wire and the backup's own peer-loss promotion races a
        # multi-hundred-ms outage).  Restart locally instead; the ladder
        # stage is kept so the next failure can still escalate.
        if decision.action is RecoveryAction.FAILOVER and self._peer_stale():
            rule = cfg.rule_for(component)
            decision = replace(
                decision,
                action=RecoveryAction.LOCAL_RESTART,
                restart_number=max(1, base.restart_number),
                delay=rule.restart_delay,
                reason=f"{decision.reason} (deferred: peer stale)",
            )
        self._log("recovery", component, f"{decision.action.value}: {decision.reason}")
        return decision

    def _escalate(self, base: RecoveryDecision, reason: str) -> RecoveryDecision:
        """Next rung of the ladder: switchover, then reinstall.

        Reinstall is only reached when a switchover was already tried
        and the peer still is not there to take over — the middleware
        stack itself is the remaining suspect.
        """
        stage = self._stage.get(base.component, 0)
        if stage >= 1 and not self.engine.peer_present:
            self._stage[base.component] = 2
            action = RecoveryAction.REINSTALL
        else:
            self._stage[base.component] = max(stage, 1)
            action = RecoveryAction.FAILOVER
        return replace(base, action=action, restart_number=0, delay=0.0, reason=reason)

    def _peer_stale(self) -> bool:
        if not self.engine.peer_present:
            return True
        silence = self.engine.monitor.silence(PEER)
        return (
            silence is not None
            and silence > self.config.policy_peer_stale_factor * self.config.peer_heartbeat_period
        )

    # -- periodic regime loop -----------------------------------------------------

    def start(self) -> None:
        """Begin the regime loop (same cadence as the heartbeat sweep)."""
        if self._running:
            return
        self._running = True
        self._cancel_timer()
        self._timer = self.kernel.schedule(
            self.engine.scaled(self.config.heartbeat_period), self._tick
        )

    def stop(self) -> None:
        self._running = False
        self._cancel_timer()

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self.kernel.cancel(self._timer)
            self._timer = None

    def _tick(self) -> None:
        if not self._running or not self.engine.alive:
            return
        self.classifier.sample()
        regime = self.classifier.classify()
        self._apply_regime(regime)
        if self.config.policy_proactive_failover:
            self._proactive_check()
        if self.config.policy_switch_strategies:
            self._maybe_switch_strategy(regime)
        self._stability_sweep()
        self._timer = self.kernel.schedule(
            self.engine.scaled(self.config.heartbeat_period), self._tick
        )

    def _apply_regime(self, regime: FaultRegime) -> None:
        if regime is self._tuned_regime:
            return
        monitor = self.engine.monitor
        cfg = self.config
        # Component watches are same-node direct calls — no network
        # between the FTIM and the engine — so tightening them converts
        # hang-detection latency into almost no false-positive risk.
        # The peer watch rides the LAN and gets the opposite treatment:
        # under gray evidence it must tolerate more consecutive misses.
        tighten = regime in (FaultRegime.CRASHY, FaultRegime.GRAY)
        for name in sorted(self.engine.components):
            monitor.tune(name, timeout_scale=cfg.policy_tighten_scale if tighten else None)
        if regime is FaultRegime.GRAY:
            monitor.tune(PEER, miss_tolerance=cfg.policy_gray_miss_tolerance)
        else:
            monitor.tune(PEER)
        self._tuned_regime = regime
        self.engine.trace.emit("engine", self.engine.node_name, "policy-regime", regime=regime.value)
        self._log("regime", "*", regime.value)

    def _proactive_check(self) -> None:
        """Act on perfmon evidence before the heartbeat timeout fires."""
        for name in self.classifier.perfmon_missing():
            if self.engine.monitor.is_suspected(name):
                continue
            self._log("proactive", name, "perfmon: process vanished")
            self.engine.trace.emit(
                "engine", self.engine.node_name, "policy-proactive", target=name
            )
            self.engine._handle_component_failure(name, "perfmon: process vanished")

    def _maybe_switch_strategy(self, regime: FaultRegime) -> None:
        if self.engine.role is not Role.PRIMARY:
            return  # the backup follows the primary via heartbeats
        base = self.config.replication_strategy
        if base not in ("cold-passive", "leader-follower"):
            # A DR-wired baseline has topology (the mirror site) the
            # policy cannot re-create; leave it alone.
            return
        if regime is FaultRegime.PARTITIONED:
            return  # the peer cannot follow a switch it cannot hear
        target = "leader-follower" if regime in (FaultRegime.CRASHY, FaultRegime.GRAY) else base
        if target == self.engine.strategy_name:
            return
        now = self.kernel.now
        if self._last_switch_at is not None and now - self._last_switch_at < self.config.policy_switch_dwell:
            return  # dwell: regime flicker must not become strategy flapping
        self._last_switch_at = now
        self._log("switch", "*", f"{self.engine.strategy_name} -> {target} ({regime.value})")
        self.engine.switch_strategy(target, f"regime {regime.value}")

    def _stability_sweep(self) -> None:
        """Forget old incidents after sustained stability."""
        now = self.kernel.now
        for component in sorted(self._last_failure_at):
            if now - self._last_failure_at[component] < self.config.policy_stability_window:
                continue
            record = self.engine.components.get(component)
            if record is not None and record.status is not ComponentStatus.RUNNING:
                continue
            del self._last_failure_at[component]
            self._stage.pop(component, None)
            self._recent.pop(component, None)
            self.engine.recovery.clear(component)
            self._log("clear", component, "stable; history cleared")

    def _log(self, kind: str, component: str, detail: str) -> None:
        self.decisions.append(
            PolicyDecision(time=self.kernel.now, kind=kind, component=component, detail=detail)
        )

    def __repr__(self) -> str:
        return f"AdaptivePolicy(regime={self.classifier.regime.value}, decisions={len(self.decisions)})"
