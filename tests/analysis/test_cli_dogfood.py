"""CLI contract tests and the dogfood gate.

The dogfood gate is the point of the whole subsystem: the analyzer must
pass over its own repository (``python -m repro.analysis src/repro``
exits 0), and must fail loudly the moment a violation is introduced.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.analysis.cli import main

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out


# -- dogfood gate --------------------------------------------------------


def test_repo_is_clean_in_strict_mode(capsys):
    code, out = run_cli([SRC_REPRO, "--strict"], capsys)
    assert code == 0, f"analysis found violations:\n{out}"
    assert "0 finding(s)" in out


def test_repo_is_clean_via_module_invocation():
    completed = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
    assert "passes: det, com, race" in completed.stdout


def test_seeded_violation_flips_the_gate(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import time\n\n\ndef stamp(kernel):\n    kernel.schedule(time.time(), stamp)\n",
        encoding="utf-8",
    )
    code, out = run_cli([SRC_REPRO, str(bad)], capsys)
    assert code == 1
    assert "DET001" in out


# -- CLI contract --------------------------------------------------------


def test_pass_selection_runs_only_requested_pass(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\n\ndef f():\n    return time.time()\n", encoding="utf-8")
    code, out = run_cli([str(bad), "--passes", "com,race"], capsys)
    assert code == 0  # determinism pass not selected
    assert "passes: com, race" in out


def test_unknown_pass_is_a_usage_error(capsys):
    assert main([SRC_REPRO, "--passes", "nope"]) == 2


def test_missing_path_is_a_usage_error(capsys):
    assert main([os.path.join(REPO_ROOT, "no", "such", "dir")]) == 2


def test_json_output_round_trips(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import os\n\nTOKEN = os.urandom(4)\n", encoding="utf-8")
    code, out = run_cli([str(bad), "--json"], capsys)
    assert code == 1
    document = json.loads(out)
    assert document["schema"] == "repro.analysis/v1"
    assert document["counts"]["error"] == 1
    assert document["findings"][0]["rule"] == "DET003"


def test_strict_gates_on_warnings(tmp_path, capsys):
    racy = tmp_path / "racy.py"
    racy.write_text(
        "class Pump:\n"
        "    def start(self):\n"
        "        self.kernel.schedule(5.0, self._a)\n"
        "        self.kernel.schedule(5.0, self._b)\n"
        "\n"
        "    def _a(self):\n"
        "        self.valve = 1\n"
        "\n"
        "    def _b(self):\n"
        "        self.valve = 2\n",
        encoding="utf-8",
    )
    lenient, _ = run_cli([str(racy)], capsys)
    strict, out = run_cli([str(racy), "--strict"], capsys)
    assert lenient == 0  # warnings do not gate by default
    assert strict == 1
    assert "RACE001" in out


def test_list_rules_catalogue(capsys):
    code, out = run_cli(["--list-rules"], capsys)
    assert code == 0
    for rule_id in (
        "DET001", "DET004", "COM001", "COM004", "RACE001", "RACE004",
        "RACE101", "RACE102", "RACE103",
        "PURE001", "PURE002", "PURE003", "PURE004",
        "HOT001", "HOT006",
        "LIFE001", "LIFE002", "LIFE003", "LIFE004", "LIFE005", "LIFE006",
        "GEN001", "GEN002",
    ):
        assert rule_id in out
    # The catalogue is grouped by family for scanability.
    assert "# LIFE" in out


def test_effects_flag_appends_the_effects_pass(tmp_path, capsys):
    bad = tmp_path / "impure.py"
    bad.write_text(
        "from repro.perf.executor import parallel_map\n"
        "\n"
        "SEEN = []\n"
        "\n"
        "\n"
        "def record(v):\n"
        "    SEEN.append(v)\n"
        "    return v\n"
        "\n"
        "\n"
        "def main(vs):\n"
        "    return parallel_map(record, vs)\n",
        encoding="utf-8",
    )
    default_code, default_out = run_cli([str(bad)], capsys)
    effects_code, effects_out = run_cli([str(bad), "--effects"], capsys)
    assert default_code == 0 and "PURE001" not in default_out
    assert effects_code == 1 and "PURE001" in effects_out
    assert "passes: det, com, race, effects" in effects_out


def test_max_k_zero_disables_propagation(tmp_path, capsys):
    racy = tmp_path / "chained.py"
    racy.write_text(
        "class Widget:\n"
        "    def start(self):\n"
        "        self.kernel.schedule(1.0, self.on_a)\n"
        "        self.kernel.schedule(1.0, self.on_b)\n"
        "\n"
        "    def on_a(self):\n"
        "        self._set()\n"
        "\n"
        "    def _set(self):\n"
        "        self.state = 1\n"
        "\n"
        "    def on_b(self):\n"
        "        self.state = 2\n",
        encoding="utf-8",
    )
    deep, deep_out = run_cli([str(racy), "--passes", "effects", "--strict"], capsys)
    shallow, _ = run_cli([str(racy), "--passes", "effects", "--strict", "--max-k", "0"], capsys)
    assert deep == 1 and "RACE101" in deep_out
    assert shallow == 0


def test_negative_max_k_is_a_usage_error(capsys):
    assert main([SRC_REPRO, "--effects", "--max-k", "-1"]) == 2


def test_syntax_error_is_reported_not_crashed(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n", encoding="utf-8")
    code, out = run_cli([str(broken)], capsys)
    assert code == 1
    assert "GEN001" in out


# -- per-directory rule profile (--relax) --------------------------------


def _entropy_file(root, name="gen.py"):
    path = root / name
    path.write_text("import os\n\nTOKEN = os.urandom(4)\n", encoding="utf-8")
    return path


def test_relax_downgrades_matching_rules_to_info(tmp_path, capsys):
    _entropy_file(tmp_path)
    code, out = run_cli([str(tmp_path), "--strict", "--relax", f"{tmp_path}=DET003"], capsys)
    assert code == 0
    assert "info DET003" in out  # still reported, no longer gating


def test_relax_is_scoped_to_the_prefix(tmp_path, capsys):
    inside = tmp_path / "covered"
    outside = tmp_path / "elsewhere"
    inside.mkdir()
    outside.mkdir()
    _entropy_file(inside)
    _entropy_file(outside)
    code, out = run_cli([str(tmp_path), "--relax", f"{inside}=DET003"], capsys)
    assert code == 1  # the un-relaxed copy still gates
    assert out.count("error DET003") == 1
    assert out.count("info DET003") == 1


def test_relax_accepts_slugs_and_is_repeatable(tmp_path, capsys):
    _entropy_file(tmp_path)
    wall = tmp_path / "wall.py"
    wall.write_text("import time\n\n\ndef f(kernel):\n    kernel.schedule(time.time(), f)\n", encoding="utf-8")
    code, out = run_cli(
        [str(tmp_path), "--relax", f"{tmp_path}=entropy", "--relax", f"{tmp_path}=wall-clock"],
        capsys,
    )
    assert code == 0
    assert "info DET003" in out
    assert "info DET001" in out


def test_relax_bad_spec_and_unknown_rule_are_usage_errors(capsys):
    assert main([SRC_REPRO, "--relax", "no-equals-sign"]) == 2
    assert main([SRC_REPRO, "--relax", "src=NOPE999"]) == 2


def test_tests_tree_is_clean_under_the_test_profile(capsys):
    # Mirrors `make lint-tests`: the planted-defect corpus legitimately
    # violates the race and purity rules, so those are relaxed for it.
    tests_dir = os.path.join(REPO_ROOT, "tests")
    corpus_dir = os.path.join(tests_dir, "analysis", "corpus")
    code, out = run_cli(
        [
            tests_dir, "--strict", "--effects",
            "--relax", f"{tests_dir}=DET002,DET003,DET006,PURE001,PURE002,PURE003,PURE004",
            "--relax", f"{corpus_dir}=RACE001,RACE002,RACE003,RACE101,RACE102,RACE103",
        ],
        capsys,
    )
    assert code == 0, f"tests/ lint failed under the relaxed profile:\n{out}"
