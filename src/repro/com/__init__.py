"""COM object model and DCOM remoting, simulated.

OFTT "is built on top of the Microsoft COM component architecture.  Fault
tolerance functions such as state checkpointing, failure detection and
recovery are implemented as COM objects" (§2.2).  This package provides
that substrate:

* :class:`GUID` and deterministic IID/CLSID generation.
* Interface declarations (:func:`declare_interface`, ``IUNKNOWN``).
* :class:`ComObject` — reference-counted objects with ``QueryInterface``.
* :class:`ClassFactory` + per-node :class:`ComRuntime` with registry-backed
  class registration and ``CoCreateInstance``.
* :class:`DcomExporter` / :class:`Proxy` — ORPC over the simulated network
  with the RPC failure semantics the paper complains about (slow timeouts,
  ``RPC_E_DISCONNECTED`` after node death).
"""

from repro.com.guids import GUID, guid_from_name
from repro.com.hresult import (
    CLASS_E_CLASSNOTAVAILABLE,
    E_FAIL,
    E_NOINTERFACE,
    E_POINTER,
    REGDB_E_CLASSNOTREG,
    RPC_E_DISCONNECTED,
    RPC_E_SERVERCALL_REJECTED,
    RPC_E_TIMEOUT,
    S_FALSE,
    S_OK,
    failed,
    hresult_name,
    succeeded,
)
from repro.com.interfaces import IUNKNOWN, InterfaceDecl, declare_interface
from repro.com.object import ComObject
from repro.com.factory import ClassFactory
from repro.com.runtime import ComRuntime
from repro.com.marshal import ObjRef, marshal_value, unmarshal_value
from repro.com.dcom import DcomExporter, Proxy, RpcResult

__all__ = [
    "CLASS_E_CLASSNOTAVAILABLE",
    "ClassFactory",
    "ComObject",
    "ComRuntime",
    "DcomExporter",
    "E_FAIL",
    "E_NOINTERFACE",
    "E_POINTER",
    "GUID",
    "IUNKNOWN",
    "InterfaceDecl",
    "ObjRef",
    "Proxy",
    "REGDB_E_CLASSNOTREG",
    "RPC_E_DISCONNECTED",
    "RPC_E_SERVERCALL_REJECTED",
    "RPC_E_TIMEOUT",
    "RpcResult",
    "S_FALSE",
    "S_OK",
    "declare_interface",
    "failed",
    "guid_from_name",
    "hresult_name",
    "marshal_value",
    "succeeded",
    "unmarshal_value",
]
