"""Run-twice harness and checkpoint round-trip check.

:func:`run_twice_and_diff` is the core API: build-and-drive a scenario
twice from the same seed and report the first trace divergence.  The
factory is called twice with the *same* arguments; any state it shares
between calls (module globals, class attributes, closures over mutable
objects) is exactly the kind of bug this harness exists to find.

:func:`checkpoint_roundtrip` is the image-stability check: capture an
application, restore the image into a fresh launch, capture again, and
require the two images to serialize byte-identically (order-preserving
serialization — see ``canonical_image_bytes``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.checkpoint import canonical_image_bytes
from repro.core.status import ComponentStatus
from repro.replay.canonical import CanonicalEvent, canonicalize_trace
from repro.replay.diff import DEFAULT_CONTEXT, Divergence, first_divergence
from repro.simnet.trace import TraceLog

#: A factory that builds and drives one run, returning its TraceLog.
#: Extra comparable payload (experiment rows, campaign signatures) can be
#: returned as ``(trace, payload)``.
RunFactory = Callable[[int], Any]


@dataclass
class ReplayResult:
    """Outcome of one run-twice comparison."""

    subject: str
    seed: int
    events: int  #: canonical events in run 1
    events_second: int  #: canonical events in run 2
    fingerprint_first: str
    fingerprint_second: str
    divergence: Optional[Divergence] = None
    #: Mismatch between the runs' extra payloads (None when none or equal).
    payload_mismatch: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """Whether the two runs were indistinguishable."""
        return self.divergence is None and self.payload_mismatch is None

    def as_wire(self) -> Dict[str, Any]:
        return {
            "kind": "replay",
            "subject": self.subject,
            "seed": self.seed,
            "ok": self.ok,
            "events": self.events,
            "events_second": self.events_second,
            "fingerprint_first": self.fingerprint_first,
            "fingerprint_second": self.fingerprint_second,
            "divergence": self.divergence.as_wire() if self.divergence is not None else None,
            "payload_mismatch": self.payload_mismatch,
        }


def _split(result: Any) -> tuple:
    """Normalize a factory result into (trace, payload)."""
    if isinstance(result, TraceLog):
        return result, None
    if isinstance(result, tuple) and len(result) == 2 and isinstance(result[0], TraceLog):
        return result
    raise TypeError(f"replay factory must return a TraceLog or (TraceLog, payload), got {type(result).__name__}")


def run_twice_and_diff(
    factory: RunFactory,
    seed: int = 0,
    subject: str = "",
    context: int = DEFAULT_CONTEXT,
) -> ReplayResult:
    """Run *factory* twice with *seed* and diff the canonical traces.

    The payloads (if the factory returns ``(trace, payload)``) are
    compared with plain equality after trace comparison — a payload
    mismatch with an identical trace usually means the nondeterminism
    lives in summary/aggregation code rather than the simulation.
    """
    trace_a, payload_a = _split(factory(seed))
    trace_b, payload_b = _split(factory(seed))
    events_a = canonicalize_trace(trace_a)
    events_b = canonicalize_trace(trace_b)
    divergence = first_divergence(events_a, events_b, context=context)
    payload_mismatch = None
    if divergence is None and payload_a != payload_b:
        payload_mismatch = {"first": payload_a, "second": payload_b}
    return ReplayResult(
        subject=subject,
        seed=seed,
        events=len(events_a),
        events_second=len(events_b),
        fingerprint_first=trace_a.fingerprint(),
        fingerprint_second=trace_b.fingerprint(),
        divergence=divergence,
        payload_mismatch=payload_mismatch,
    )


@dataclass
class RoundTripResult:
    """Outcome of one capture -> restore -> capture check."""

    subject: str
    seed: int
    app_name: str
    ok: bool
    image_bytes: int  #: size of the first canonical image
    regions: List[str] = field(default_factory=list)
    #: Human-readable description of the first difference (empty when ok).
    mismatch: str = ""

    def as_wire(self) -> Dict[str, Any]:
        return {
            "kind": "roundtrip",
            "subject": self.subject,
            "seed": self.seed,
            "app": self.app_name,
            "ok": self.ok,
            "image_bytes": self.image_bytes,
            "regions": self.regions,
            "mismatch": self.mismatch,
        }


def _describe_image_mismatch(first: Dict[str, Dict], second: Dict[str, Dict]) -> str:
    """Pinpoint the earliest structural difference between two images."""
    if list(first) != list(second):
        return f"region order/set differs: {list(first)} vs {list(second)}"
    for region in first:
        vars_a, vars_b = first[region], second[region]
        if list(vars_a) != list(vars_b):
            return f"variable order/set differs in region {region!r}: {list(vars_a)} vs {list(vars_b)}"
        for var in vars_a:
            if vars_a[var] != vars_b[var]:
                return f"value differs at {region}.{var}: {vars_a[var]!r} vs {vars_b[var]!r}"
    return "images serialize differently (value representation drift)"


def checkpoint_roundtrip(env: Any, app: Any, subject: str = "", seed: int = 0) -> RoundTripResult:
    """Capture *app*, restore the image into a fresh launch, capture again.

    The two images must serialize to identical bytes under the
    order-preserving serializer.  Thread contexts are deliberately NOT
    compared: a freshly launched process legitimately has different
    program counters; the restorable *state* is the image.

    The relaunch goes through the same status bookkeeping the engine's
    own ``_local_restart`` uses, so the stop is not misread as a failure.
    """
    engine = env.pair.engines[env.pair.primary_node()]
    ftim = app.api.ftim
    checkpoint_one = ftim.capture()
    image_one = checkpoint_one.image

    record = engine.components.get(app.name)
    if record is not None:
        record.status = ComponentStatus.RECOVERING
    engine.monitor.pause(app.name)
    app.stop()
    app.launch(image_one)
    if record is not None:
        record.status = ComponentStatus.RUNNING
    engine.monitor.resume(app.name)

    # No kernel advance between launch and capture: the captured state is
    # exactly what restore rebuilt, not what the app computed afterwards.
    checkpoint_two = app.api.ftim.capture()
    image_two = checkpoint_two.image

    bytes_one = canonical_image_bytes(image_one)
    bytes_two = canonical_image_bytes(image_two)
    ok = bytes_one == bytes_two
    return RoundTripResult(
        subject=subject,
        seed=seed,
        app_name=app.name,
        ok=ok,
        image_bytes=len(bytes_one),
        regions=list(image_one),
        mismatch="" if ok else _describe_image_mismatch(image_one, image_two),
    )
