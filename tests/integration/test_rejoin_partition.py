"""Integration tests: node rejoin, repeated failovers, partitions."""

from repro.core.roles import Role
from repro.faults import NetworkPartition, NodeFailure, NodeReboot
from repro.faults.injector import FaultInjector
from repro.harness.scenario import build_demo

from tests.core.util import make_pair_world


def test_failover_then_rejoin_then_failback():
    """Kill A -> B takes over; repair A (rejoins as backup); kill B -> A
    takes over again with B's state."""
    world = make_pair_world(seed=31)
    world.start()
    world.run_for(5_000.0)
    node_a = world.primary
    node_b = world.backup
    injector = FaultInjector(world.kernel, world)

    injector.inject_now(NodeFailure(node_a))
    world.run_for(3_000.0)
    assert world.primary == node_b

    injector.inject_now(NodeReboot(node_a, reinstall=True))
    world.run_for(5_000.0)
    assert world.pair.engines[node_a].role is Role.BACKUP
    ticks_on_b = world.pair.apps[node_b].ticks()
    world.run_for(3_000.0)

    injector.inject_now(NodeFailure(node_b))
    world.run_for(3_000.0)
    assert world.primary == node_a
    app = world.pair.apps[node_a]
    assert app.running
    assert app.ticks() >= ticks_on_b - 25  # state carried across two hops


def test_many_alternating_failovers():
    """Five kill/repair cycles: the pair must keep converging."""
    world = make_pair_world(seed=32)
    world.start()
    world.run_for(3_000.0)
    injector = FaultInjector(world.kernel, world)
    for _round in range(5):
        victim = world.primary
        injector.inject_now(NodeFailure(victim))
        world.run_for(3_000.0)
        assert world.primary is not None
        assert world.primary != victim
        injector.inject_now(NodeReboot(victim, reinstall=True))
        world.run_for(6_000.0)
        assert world.pair.is_stable()
    # Progress never went backwards beyond a checkpoint window per hop.
    assert world.pair.apps[world.primary].ticks() > 0


def test_partition_creates_then_resolves_dual_primary():
    """Full partition: the backup promotes (dual primary while split);
    healing demotes exactly one side and stops its app copy."""
    world = make_pair_world(seed=33)
    world.start()
    world.run_for(3_000.0)
    primary = world.primary
    backup = world.backup
    injector = FaultInjector(world.kernel, world)
    injector.inject_now(NetworkPartition([primary], [backup]))
    world.run_for(3_000.0)
    roles = {n: world.pair.engines[n].role for n in ("alpha", "beta")}
    assert list(roles.values()).count(Role.PRIMARY) == 2  # split brain window
    world.partitions.heal_all()
    world.run_for(3_000.0)
    roles_after = {n: world.pair.engines[n].role for n in ("alpha", "beta")}
    assert sorted(role.value for role in roles_after.values()) == ["backup", "primary"]
    # Only the surviving primary runs its copy.
    assert world.pair.running_app_nodes() == [world.primary]
    # The promoted side (higher incarnation) wins the resolution.
    assert world.primary == backup


def test_partition_of_demo_testbed_keeps_monitor_informed():
    demo = build_demo(seed=34)
    demo.start()
    demo.run_for(10_000.0)
    primary = demo.pair.primary_node()
    backup = demo.pair.backup_node()
    # Partition both LANs between the pair members only; test-pc keeps
    # seeing both sides on lan0 (its only link).
    demo.partitions.split("lan0", [primary], [backup, "test-pc"])
    demo.partitions.split("lan1", [primary], [backup])
    demo.run_for(5_000.0)
    demo.partitions.heal_all()
    demo.run_for(10_000.0)
    assert demo.pair.is_stable()
    assert demo.monitor.current_primary() == demo.pair.primary_node()
    # Telephone events kept flowing the whole time.
    app = demo.primary_app()
    assert app.events_processed() > 0
