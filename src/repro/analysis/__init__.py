"""Static-analysis toolkit guarding the simulation's reliability contracts.

The kernel promises that two runs with the same seed produce identical
traces (:mod:`repro.simnet.kernel`), and the COM layer promises that every
remotable object honours its declared interfaces
(:mod:`repro.com.object`).  Nothing in Python enforces either promise: one
stray ``time.time()`` or an undeclared CamelCase method silently breaks
replay or the marshalling contract.  This package machine-checks both,
plus a third hazard class — same-timestamp event handlers whose relative
order is fixed only by the kernel's sequence-number tiebreak.

Four passes run over the source tree (``python -m repro.analysis src/repro``):

* :mod:`repro.analysis.determinism` — wall-clock, ambient entropy,
  unordered fan-out, and other seed-replay hazards (``DET*`` rules).
* :mod:`repro.analysis.comcheck` — ``ComObject`` subclasses cross-checked
  against their ``InterfaceDecl``s, HRESULT discipline (``COM*`` rules).
* :mod:`repro.analysis.races` — approximate read/write sets for scheduled
  callbacks that can tie at equal sim time (``RACE001–004``).
* :mod:`repro.analysis.effects` — whole-program layer (``--effects``): a
  call graph (:mod:`repro.analysis.callgraph`) plus per-function effect
  summaries propagated with k-bounded inlining
  (:mod:`repro.analysis.summaries`) drive interprocedural race rules
  (``RACE101–103``, reported with the full call chain) and purity checks
  for ``parallel_map`` tasks (``PURE001–004``).

Findings carry a rule id, slug, severity and ``file:line``; deliberate
violations are silenced in place with ``# oftt-lint: ok[slug]`` comments
(see :mod:`repro.analysis.suppress`).  The rule catalogue lives in
``ANALYSIS.md`` at the repo root.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Rule, Severity, all_rules, rule
from repro.analysis.walker import SourceFile, load_sources, run_passes

# Importing the pass modules registers their rules, so suppression
# parsing (`is_known`) has the complete catalogue no matter which entry
# point loaded this package.
from repro.analysis import comcheck as _comcheck  # noqa: F401  (registers COM*)
from repro.analysis import determinism as _determinism  # noqa: F401  (registers DET*)
from repro.analysis import effects as _effects  # noqa: F401  (registers RACE1xx/PURE*)
from repro.analysis import races as _races  # noqa: F401  (registers RACE00x)

__all__ = [
    "Finding",
    "Rule",
    "Severity",
    "SourceFile",
    "all_rules",
    "load_sources",
    "rule",
    "run_passes",
]
