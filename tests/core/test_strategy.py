"""Tests for the pluggable replication strategies.

Covers the strategy registry/selection, the leader-follower incremental
stream (policy, follower freshness, failover without the checkpoint gap,
resync re-basing), the log-replay DR site (mirroring, activation on
total pair loss, reconstruction, standdown), and the regression suite
for the role/recovery bugfix sweep that rode along with the extraction.
"""

import pytest

from repro.core.config import (
    REPLICATION_STRATEGIES,
    GiveUpPolicy,
    OfttConfig,
    RecoveryRule,
    replace_config,
)
from repro.core.roles import Role
from repro.core.strategy import (
    STRATEGIES,
    ColdPassiveStrategy,
    LeaderFollowerStrategy,
    LogReplayDRStrategy,
    create_strategy,
)
from repro.chaos.schedule import FaultEntry
from repro.errors import OfttError
from repro.faults.injector import FaultInjector
from repro.harness.scenario import ChaosScenario

from tests.core.test_roles import Harness
from tests.core.util import make_pair_world


# -- registry / selection ----------------------------------------------------------


def test_registry_matches_config_strategy_names():
    assert tuple(sorted(STRATEGIES)) == tuple(sorted(REPLICATION_STRATEGIES))


def test_create_strategy_rejects_unknown_name():
    with pytest.raises(OfttError):
        create_strategy("hot-active")


def test_config_rejects_unknown_strategy():
    with pytest.raises(ValueError):
        replace_config(OfttConfig(), replication_strategy="hot-active")


def test_engines_get_strategy_from_config():
    world = make_pair_world()
    for name in ("alpha", "beta"):
        strategy = world.pair.engines[name].strategy
        assert isinstance(strategy, ColdPassiveStrategy)
        assert strategy.engine is world.pair.engines[name]

    lf_world = make_pair_world(
        config=replace_config(OfttConfig(), replication_strategy="leader-follower")
    )
    assert isinstance(lf_world.pair.engines["alpha"].strategy, LeaderFollowerStrategy)


def _message_driven_scenario(strategy, **kwargs):
    scenario = ChaosScenario(
        seed=0,
        strategy=strategy,
        workload_period=100.0,
        checkpoint_period=2_000.0,
        message_driven=True,
        **kwargs,
    )
    return scenario


# -- leader-follower ---------------------------------------------------------------


def test_leader_follower_streams_incremental_updates():
    scenario = _message_driven_scenario("leader-follower")
    scenario.start()
    scenario.run(until=10_000.0)

    primary = scenario.pair.primary_node()
    follower = scenario.pair.backup_node()
    ftim = scenario.pair.apps[primary].api.ftim
    assert ftim.incremental
    assert ftim.checkpoint_period == scenario.config.lf_update_period

    strategy = scenario.pair.engines[primary].strategy
    assert isinstance(strategy, LeaderFollowerStrategy)
    # ~100ms update period over ~10s: a stream, not periodic images.
    assert strategy.updates_replicated > 50

    # The follower's merged mirror is near-fresh: within a couple of
    # update periods of the leader's live message counter.
    mirrored = scenario.pair.engines[follower].peer_store.latest("synthetic")
    assert mirrored is not None
    live_applied = scenario.pair.apps[primary].applied()
    assert live_applied - mirrored.image["globals"]["applied"] <= 3


def test_leader_follower_failover_has_no_checkpoint_gap():
    scenario = _message_driven_scenario("leader-follower")
    injector = FaultInjector(scenario.kernel, scenario, trace=scenario.trace)
    entry = FaultEntry(10_000.0, "node-failure", {"node": "alpha"})
    injector.inject_at(entry.at, entry.build())
    scenario.start()
    scenario.kernel.schedule(15_000.0 - scenario.kernel.now, scenario.stop_workload)
    scenario.run(until=20_000.0)

    assert scenario.pair.primary_node() == "beta"
    # Every workload message either survived the failover (restored from
    # the update stream or redelivered) up to the in-flight tail.
    applied = scenario.pair.apps["beta"].applied()
    assert scenario.workload_sent - applied <= 2


def test_incremental_stream_rebases_after_follower_loses_store():
    scenario = _message_driven_scenario("leader-follower")
    scenario.start()
    scenario.run(until=5_000.0)

    follower = scenario.pair.backup_node()
    store = scenario.pair.engines[follower].peer_store
    # Simulate the post-reinstall state: the mirror chain is gone, so the
    # next delta has no base and must trigger a ckpt-resync round trip.
    store.clear("synthetic")
    assert store.latest("synthetic") is None
    scenario.run(until=7_000.0)

    rebased = store.latest("synthetic")
    assert rebased is not None
    assert store.rejected_count > 0  # the unusable delta was refused, not merged


# -- log-replay disaster recovery --------------------------------------------------


def test_dr_site_receives_checkpoints_and_message_log():
    scenario = _message_driven_scenario("log-replay-dr")
    assert scenario.dr_site is not None
    assert scenario.config.dr_node == ChaosScenario.DR_NODE
    scenario.start()
    scenario.run(until=10_000.0)

    assert scenario.dr_site.checkpoints_rx > 0
    assert scenario.dr_site.messages_rx > 0
    assert not scenario.dr_site.active  # pair alive: site stays on standby
    assert scenario.diverter_client.mirrored_count == scenario.workload_sent


def test_dr_site_recovers_total_pair_loss():
    scenario = _message_driven_scenario("log-replay-dr")
    injector = FaultInjector(scenario.kernel, scenario, trace=scenario.trace)
    for entry in (
        FaultEntry(12_000.0, "node-failure", {"node": "alpha"}),
        FaultEntry(12_050.0, "node-failure", {"node": "beta"}),
    ):
        injector.inject_at(entry.at, entry.build())
    scenario.start()
    scenario.kernel.schedule(15_000.0 - scenario.kernel.now, scenario.stop_workload)
    scenario.run(until=25_000.0)

    site = scenario.dr_site
    assert site.active
    assert site.activations == 1
    image, replayed = site.reconstruct()
    # Last checkpoint + log replay reconstructs every workload message —
    # including the ones sent after both pair nodes were already dead.
    assert image["globals"]["applied"] == scenario.workload_sent
    assert replayed > 0


def test_cold_passive_cannot_survive_total_pair_loss():
    scenario = _message_driven_scenario("cold-passive")
    assert scenario.dr_site is None
    injector = FaultInjector(scenario.kernel, scenario, trace=scenario.trace)
    for entry in (
        FaultEntry(12_000.0, "node-failure", {"node": "alpha"}),
        FaultEntry(12_050.0, "node-failure", {"node": "beta"}),
    ):
        injector.inject_at(entry.at, entry.build())
    scenario.start()
    scenario.kernel.schedule(15_000.0 - scenario.kernel.now, scenario.stop_workload)
    scenario.run(until=25_000.0)

    assert all(not engine.alive for engine in scenario.pair.engines.values())
    assert all(app.applied() == 0 for app in scenario.pair.apps.values())


def test_dr_site_stands_down_when_pair_returns():
    scenario = _message_driven_scenario("log-replay-dr")
    scenario.start()
    scenario.run(until=2_000.0)
    site = scenario.dr_site
    # Force-activate, then let the live pair's heartbeats push it back.
    site._activate(silence=9_999.0)
    assert site.active
    scenario.run_for(2_000.0)
    assert not site.active


# -- bugfix regressions ------------------------------------------------------------


def test_set_recovery_rule_keeps_shared_config_in_sync():
    world = make_pair_world()
    engine = world.pair.engines["alpha"]
    rule = RecoveryRule(max_local_restarts=0)
    engine.set_recovery_rule("synthetic", rule)
    # The manager must mutate the engine's config, not rebind its own to
    # a diverging copy (the old behaviour desynced them after one call).
    assert engine.recovery.config is engine.config
    assert engine.config.rule_for("synthetic") is rule
    # Both pair nodes share one config object, so the run-time rule
    # change is pair-wide — one recovery policy per logical unit.
    assert world.pair.engines["beta"].config.rule_for("synthetic") is rule


def test_demote_stamps_decided_at():
    harness = Harness()
    for negotiator in harness.negotiators.values():
        negotiator.begin()
    harness.kernel.run(until=5_000.0)
    alpha = harness.negotiators["alpha"]
    demoted_at = harness.kernel.now
    alpha.demote()
    assert alpha.decided_at == demoted_at


def test_dual_primary_demote_stamps_decided_at():
    harness = Harness()
    for negotiator in harness.negotiators.values():
        negotiator.begin()
    harness.kernel.run(until=5_000.0)
    alpha, beta = harness.negotiators["alpha"], harness.negotiators["beta"]
    harness.connected = False
    beta.promote()  # incarnation 2 outranks alpha's 1
    harness.connected = True
    resolved_at = harness.kernel.now
    alpha.on_peer_announce({"kind": "role-announce", "node": "beta",
                            "role": "primary", "incarnation": beta.incarnation})
    assert alpha.role is Role.BACKUP
    assert alpha.decided_at == resolved_at


def test_shutdown_node_stays_silent():
    config = replace_config(OfttConfig(), startup_retries=0, give_up_policy=GiveUpPolicy.SHUTDOWN)
    harness = Harness(config=config)
    harness.connected = False
    harness.negotiators["alpha"].begin()
    harness.kernel.run(until=20_000.0)
    alpha = harness.negotiators["alpha"]
    assert alpha.role is Role.SHUTDOWN

    sent = []
    alpha.send = lambda payload: sent.append(payload)
    # A rebooted peer asking around used to get an answer through the
    # rebooted-peer branch; a shut-down node's port would not be bound.
    alpha.on_peer_announce({"kind": "role-announce", "node": "beta",
                            "role": "undecided", "incarnation": 0})
    alpha.on_peer_announce({"kind": "role-announce", "node": "beta",
                            "role": "primary", "incarnation": 3})
    assert sent == []
    assert alpha.role is Role.SHUTDOWN


@pytest.mark.parametrize("order", ["alpha-first", "beta-first"])
def test_equal_incarnation_dual_primary_resolves_deterministically(order):
    # Both nodes went lone-primary during a total partition: equal
    # incarnations, no preferred_primary.  Whichever announcement lands
    # first, exactly one node (the tie-break loser, beta) demotes.
    config = replace_config(OfttConfig(), startup_retries=0, give_up_policy=GiveUpPolicy.GO_PRIMARY)
    harness = Harness(config=config)
    harness.connected = False
    for negotiator in harness.negotiators.values():
        negotiator.begin()
    harness.kernel.run(until=20_000.0)
    alpha, beta = harness.negotiators["alpha"], harness.negotiators["beta"]
    assert alpha.role is Role.PRIMARY and beta.role is Role.PRIMARY
    assert alpha.incarnation == beta.incarnation

    harness.connected = True
    announcements = [
        (alpha, {"kind": "role-announce", "node": "beta", "role": "primary",
                 "incarnation": beta.incarnation}),
        (beta, {"kind": "role-announce", "node": "alpha", "role": "primary",
                "incarnation": alpha.incarnation}),
    ]
    if order == "beta-first":
        announcements.reverse()
    for negotiator, payload in announcements:
        negotiator.on_peer_announce(payload)
    harness.kernel.run(until=25_000.0)

    assert alpha.role is Role.PRIMARY
    assert beta.role is Role.BACKUP
    assert ("beta", "demoted", None) in harness.events
