"""Clean twin of race102: writer and reader are both direct.

RACE002 territory — the effects pass must not echo it.
"""


class Gauge:
    def __init__(self, kernel):
        self.kernel = kernel
        self.reading = 0

    def start(self):
        self.kernel.schedule(1.0, self.on_update)
        self.kernel.schedule(1.0, self.on_report)

    def on_update(self):
        self.reading = 42

    def on_report(self):
        return self.reading
