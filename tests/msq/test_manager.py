"""Unit tests for the MSMQ queue manager and store-and-forward transport."""

import pytest

from repro.errors import MsqError, QueueNotFound
from repro.msq.manager import DEAD_LETTER_QUEUE, QueueManager

from tests.conftest import make_world


def make_managers():
    world = make_world()
    for name in ("sender", "receiver"):
        world.add_machine(name)
    sender = QueueManager(world.kernel, world.network, world.network.nodes["sender"])
    receiver = QueueManager(world.kernel, world.network, world.network.nodes["receiver"])
    return world, sender, receiver


def test_local_send_enqueues_immediately():
    world, sender, _receiver = make_managers()
    sender.create_queue("inbox")
    sender.send("sender", "inbox", {"x": 1})
    assert sender.open_queue("inbox").receive().body == {"x": 1}


def test_remote_send_delivers_and_acks():
    world, sender, receiver = make_managers()
    receiver.create_queue("inbox")
    sender.send("receiver", "inbox", "payload")
    world.run_for(100.0)
    assert receiver.open_queue("inbox").receive().body == "payload"
    assert sender.pending_count() == 0
    assert sender.stats["acked"] == 1


def test_all_messages_delivered_exactly_once():
    """Like non-transactional MSMQ, arrival order may vary under network
    jitter; the guarantee is complete, duplicate-free delivery."""
    world, sender, receiver = make_managers()
    receiver.create_queue("inbox")
    for index in range(10):
        sender.send("receiver", "inbox", index)
    world.run_for(500.0)
    queue = receiver.open_queue("inbox")
    received = [queue.receive().body for _ in range(10)]
    assert sorted(received) == list(range(10))


def test_retry_until_receiver_returns():
    world, sender, receiver = make_managers()
    receiver.create_queue("inbox")
    world.systems["receiver"].power_off()
    sender.send("receiver", "inbox", "persistent!")
    world.run_for(3_000.0)
    assert sender.pending_count() == 1  # still retrying
    world.systems["receiver"].reboot()
    world.run_for(3_000.0)
    assert sender.pending_count() == 0
    assert receiver.open_queue("inbox").receive().body == "persistent!"
    assert sender.stats["retries"] > 0


def test_retries_do_not_duplicate_deliveries():
    world, sender, receiver = make_managers()
    receiver.create_queue("inbox")
    # Lossy network forces retries and ack losses.
    world.network.links["lan0"].loss = 0.4
    for index in range(20):
        sender.send("receiver", "inbox", index)
    world.run_for(30_000.0)
    queue = receiver.open_queue("inbox")
    bodies = []
    while True:
        msg = queue.receive()
        if msg is None:
            break
        bodies.append(msg.body)
    assert sorted(bodies) == list(range(20))  # exactly once into the queue


def test_ttl_expiry_dead_letters():
    world, sender, receiver = make_managers()
    receiver.create_queue("inbox")
    world.systems["receiver"].power_off()
    sender.send("receiver", "inbox", "doomed", ttl=1_000.0)
    world.run_for(5_000.0)
    assert sender.pending_count() == 0
    dead = sender.open_queue(DEAD_LETTER_QUEUE).receive()
    assert dead is not None
    assert dead.body["reason"] == "ttl-expired"
    assert dead.body["body"] == "doomed"


def test_unknown_queue_nacked_and_dead_lettered():
    world, sender, receiver = make_managers()
    sender.send("receiver", "no-such-queue", "lost")
    world.run_for(1_000.0)
    dead = sender.open_queue(DEAD_LETTER_QUEUE).receive()
    assert dead is not None
    assert dead.body["reason"] == "no-queue"


def test_redirect_pending_moves_target():
    world, sender, receiver = make_managers()
    third = world.add_machine("third")
    third_mgr = QueueManager(world.kernel, world.network, world.network.nodes["third"])
    third_mgr.create_queue("inbox")
    world.systems["receiver"].power_off()
    sender.send("receiver", "inbox", "wandering")
    world.run_for(1_000.0)
    moved = sender.redirect_pending("receiver", "third")
    assert moved == 1
    world.run_for(2_000.0)
    assert third_mgr.open_queue("inbox").receive().body == "wandering"


def test_crash_purges_express_and_recovers_persistent():
    world, sender, receiver = make_managers()
    queue = receiver.create_queue("inbox")
    sender.send("receiver", "inbox", "keep", persistent=True)
    sender.send("receiver", "inbox", "lose", persistent=False)
    world.run_for(200.0)
    receiver.on_crash()
    receiver.on_recover()
    bodies = []
    while True:
        msg = queue.receive()
        if msg is None:
            break
        bodies.append(msg.body)
    assert bodies == ["keep"]


def test_send_while_down_rejected():
    world, sender, _receiver = make_managers()
    sender.on_crash()
    with pytest.raises(MsqError):
        sender.send("receiver", "inbox", "x")


def test_open_missing_queue_rejected():
    world, sender, _receiver = make_managers()
    with pytest.raises(QueueNotFound):
        sender.open_queue("ghost")


def test_dead_letter_queue_protected():
    world, sender, _receiver = make_managers()
    with pytest.raises(MsqError):
        sender.delete_queue(DEAD_LETTER_QUEUE)


def test_create_queue_idempotent():
    world, sender, _receiver = make_managers()
    first = sender.create_queue("q")
    second = sender.create_queue("q")
    assert first is second
