"""A SCADA monitoring/control application (Figure 1 workload).

An OPC client that subscribes to plant items on one or more OPC servers,
maintains alarm counters and bounded trend buffers, and optionally writes
a control setpoint when a measured value breaches its limit.  Its state —
alarm history, trend tails, counters — is what operators would lose on a
PC failure, hence the OFTT protection.

Unlike :class:`CallTrackApp` (which is fed through the diverter), this
app pulls its inputs through OPC data-change subscriptions, exercising
the DCOM callback path during failovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.com.marshal import ObjRef
from repro.core.api import OfttApi
from repro.core.appdriver import OfttApplication
from repro.nt.memory import copy_variables
from repro.nt.process import NTProcess
from repro.opc.client import OpcClient
from repro.opc.types import OpcValue
from repro.simnet.events import Timeout

STATE_VARS = ("latest", "alarm_counts", "alarm_log", "trend", "updates_seen", "writes_issued")


@dataclass(frozen=True)
class AlarmRule:
    """Alarm (and optional control) rule for one item."""

    item_id: str
    high_limit: float
    #: Optional control response: (item to write, value) on breach.
    control_write: Optional[Tuple[str, float]] = None


class ScadaMonitorApp(OfttApplication):
    """OFTT-protected SCADA monitoring/control OPC client."""

    name = "scada-monitor"

    def __init__(
        self,
        server_ref: Optional[ObjRef] = None,
        items: Optional[List[str]] = None,
        alarms: Optional[List[AlarmRule]] = None,
        update_rate: float = 200.0,
        trend_depth: int = 50,
    ) -> None:
        super().__init__()
        self.server_ref = server_ref
        self.items = list(items or [])
        self.alarms = {rule.item_id: rule for rule in (alarms or [])}
        self.update_rate = update_rate
        self.trend_depth = trend_depth
        self.api: Optional[OfttApi] = None
        self.client: Optional[OpcClient] = None
        self.connect_failures = 0

    # -- lifecycle -------------------------------------------------------------

    def launch(self, image: Optional[Dict[str, Any]]) -> NTProcess:
        context = self.context
        assert context is not None, "install() must run before launch()"
        process = context.system.create_process(self.name)
        self.process = process
        self._init_state(process, image)

        client = OpcClient(context.runtime, f"{self.name}@{context.node_name}", process=process)
        self.client = client

        def main_body(_thread):
            return self._main_loop()

        process.create_thread("main", body=main_body, dynamic=False)
        process.start()

        api = OfttApi(context, self.name, process)
        api.OFTTInitialize(stateful=True)
        api.OFTTSelSave("globals", list(STATE_VARS))
        self.api = api
        self.launch_count += 1
        return process

    def _init_state(self, process: NTProcess, image: Optional[Dict[str, Any]]) -> None:
        space = process.address_space
        defaults: Dict[str, Any] = {
            "latest": {},
            "alarm_counts": {},
            "alarm_log": [],
            "trend": {item: [] for item in self.items},
            "updates_seen": 0,
            "writes_issued": 0,
        }
        # Deep copy: a shallow dict() would alias the checkpoint's nested
        # containers (latest, trend, ...) into live memory, so the running
        # app would mutate the image held by the engine's CheckpointStore.
        restored = copy_variables(image.get("globals", {})) if image else {}
        for var, default in defaults.items():
            space.write(var, restored.get(var, default))

    # -- the main application thread ---------------------------------------------

    def _main_loop(self):
        # Wait for a server reference (co-located server apps publish it
        # at launch), connect with retry, subscribe, then idle; data
        # arrives via the DCOM callback sink.
        while self.server_ref is None:
            yield Timeout(200.0)
        while True:
            try:
                yield from self.client.connect_remote(self.server_ref)
                break
            except Exception:  # noqa: BLE001 - RPC failures, retried
                self.connect_failures += 1
                yield Timeout(1_000.0)
        if self.items:
            # Group names must be unique server-wide; a failover peer (or a
            # restarted copy) registers its own group rather than fighting
            # over the dead client's.
            group_name = f"scada:{self.context.node_name}:{self.launch_count}"
            group = yield from self.client.add_group(group_name, update_rate=self.update_rate)
            yield from group.add_items(self.items)
            group.set_callback(self._on_data_change)
        while True:
            yield Timeout(1_000.0)

    # -- data handling ------------------------------------------------------------

    def _on_data_change(self, _group: str, batch: List[Tuple[int, str, OpcValue]]) -> None:
        if self.process is None or not self.process.alive:
            return
        space = self.process.address_space
        latest = space.read("latest")
        trend = space.read("trend")
        updates = space.read("updates_seen")
        for _handle, item_id, value in batch:
            latest[item_id] = [value.value, value.quality.value, value.timestamp]
            tail = trend.setdefault(item_id, [])
            tail.append([value.timestamp, value.value])
            if len(tail) > self.trend_depth:
                del tail[: len(tail) - self.trend_depth]
            updates += 1
            if value.quality.is_good:
                self._check_alarm(item_id, value)
        space.write("latest", latest)
        space.write("trend", trend)
        space.write("updates_seen", updates)

    def _check_alarm(self, item_id: str, value: OpcValue) -> None:
        rule = self.alarms.get(item_id)
        if rule is None or not isinstance(value.value, (int, float)):
            return
        if value.value <= rule.high_limit:
            return
        space = self.process.address_space
        counts = space.read("alarm_counts")
        counts[item_id] = counts.get(item_id, 0) + 1
        space.write("alarm_counts", counts)
        log = space.read("alarm_log")
        log.append([value.timestamp, item_id, value.value])
        if len(log) > 500:
            del log[: len(log) - 500]
        space.write("alarm_log", log)
        if rule.control_write is not None and self.client is not None:
            target, command = rule.control_write
            # One-way control write; failures surface as RPC results we
            # deliberately ignore here (the PLC logic is the safety net).
            self.process.system.kernel.spawn(
                self._control_write(target, command), name=f"{self.name}:write"
            )

    def _control_write(self, target: str, command: float):
        try:
            yield from self.client.write_items([(target, command)])
            space = self.process.address_space
            space.write("writes_issued", space.read("writes_issued") + 1)
        except Exception:  # noqa: BLE001 - control write lost; alarm persists
            return

    # -- accessors ------------------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """Snapshot of the tracked state."""
        if self.process is None:
            return {}
        space = self.process.address_space
        return {var: space.read(var) for var in STATE_VARS}

    def alarm_count(self, item_id: str) -> int:
        """Alarms recorded for one item."""
        if self.process is None:
            return 0
        return self.process.address_space.read("alarm_counts").get(item_id, 0)

    def updates_seen(self) -> int:
        """Total data-change updates applied."""
        if self.process is None:
            return 0
        return self.process.address_space.read("updates_seen")
