"""Unit tests for the Win32 API surface and the IAT interception trick."""

import pytest

from repro.errors import NTError, ThreadDead
from repro.nt.kernel32 import Kernel32
from repro.nt.perfmon import NTDLL_STUB_ADDRESS

from tests.conftest import make_world


def make_process():
    world = make_world()
    system = world.add_machine("host")
    process = system.create_process("app")
    kernel32 = Kernel32(process)
    return world, system, process, kernel32


def test_create_thread_returns_handle_to_dynamic_thread():
    world, system, process, kernel32 = make_process()
    process.create_thread("static", dynamic=False)
    process.start()
    handle = kernel32.CreateThread("worker")
    assert handle.deref().dynamic
    assert handle.deref().name == "worker"


def test_enum_process_threads_hides_dynamic_threads():
    """The paper's §3.1 complaint: standard APIs do not expose
    dynamically created threads."""
    world, system, process, kernel32 = make_process()
    static = process.create_thread("static", dynamic=False)
    process.start()
    kernel32.CreateThread("dynamic-1")
    kernel32.CreateThread("dynamic-2")
    visible = {handle.tid for handle in kernel32.EnumProcessThreads()}
    assert visible == {static.tid}


def test_open_thread_refuses_dynamic_threads():
    world, system, process, kernel32 = make_process()
    process.create_thread("static", dynamic=False)
    process.start()
    handle = kernel32.CreateThread("dynamic")
    with pytest.raises(NTError, match="IAT hook"):
        kernel32.call("OpenThread", handle.tid)


def test_iat_tracker_observes_dynamic_creations():
    """The OFTT mechanism: patch CreateThread, collect handles."""
    world, system, process, kernel32 = make_process()
    process.create_thread("static", dynamic=False)
    process.start()
    tracked = kernel32.install_thread_tracker()
    kernel32.CreateThread("after-patch-1")
    kernel32.CreateThread("after-patch-2")
    assert [handle.deref().name for handle in tracked] == ["after-patch-1", "after-patch-2"]
    # Contexts of tracked dynamic threads are capturable.
    context = kernel32.GetThreadContext(tracked[0])
    assert context.program_counter > 0


def test_iat_tracker_misses_threads_created_before_patch():
    world, system, process, kernel32 = make_process()
    process.create_thread("static", dynamic=False)
    process.start()
    kernel32.CreateThread("before-patch")
    tracked = kernel32.install_thread_tracker()
    assert tracked == []


def test_get_set_thread_context_roundtrip():
    world, system, process, kernel32 = make_process()
    process.create_thread("static", dynamic=False)
    process.start()
    handle = kernel32.EnumProcessThreads()[0]
    context = kernel32.GetThreadContext(handle)
    context.registers["eax"] = 0xDEAD
    kernel32.call("SetThreadContext", handle, context)
    assert kernel32.GetThreadContext(handle).registers["eax"] == 0xDEAD


def test_context_snapshot_is_independent():
    world, system, process, kernel32 = make_process()
    thread = process.create_thread("static", dynamic=False)
    process.start()
    handle = kernel32.EnumProcessThreads()[0]
    context = kernel32.GetThreadContext(handle)
    context.program_counter = 0
    assert thread.context.program_counter != 0


def test_closed_handle_faults():
    world, system, process, kernel32 = make_process()
    process.create_thread("static", dynamic=False)
    process.start()
    handle = kernel32.CreateThread("worker")
    kernel32.call("CloseHandle", handle)
    with pytest.raises(ThreadDead):
        kernel32.GetThreadContext(handle)


def test_call_through_unresolved_import_fails():
    world, system, process, kernel32 = make_process()
    with pytest.raises(NTError):
        process.iat.call("NotAnApi")


def test_patch_unknown_import_fails():
    world, system, process, kernel32 = make_process()
    with pytest.raises(NTError):
        process.iat.patch("NotAnApi", lambda *a: None)


def test_unpatch_removes_hook():
    world, system, process, kernel32 = make_process()
    process.start()
    seen = []

    def hook(api, args, result):
        seen.append(api)

    process.iat.patch("CreateThread", hook)
    kernel32.CreateThread("one")
    process.iat.unpatch("CreateThread", hook)
    kernel32.CreateThread("two")
    assert seen == ["CreateThread"]
    assert not process.iat.is_patched("CreateThread")


def test_call_counts_tracked():
    world, system, process, kernel32 = make_process()
    process.start()
    kernel32.call("GetCurrentProcessId")
    kernel32.call("GetCurrentProcessId")
    assert process.iat.call_counts["GetCurrentProcessId"] == 2


def test_perfmon_thread_start_address_is_misleading():
    """§3.1: 'the thread start address in the performance counter is
    always the pointer to a routine in NTDLL.DLL'."""
    world, system, process, kernel32 = make_process()
    process.create_thread("static", dynamic=False)
    process.start()
    handle = kernel32.CreateThread("dynamic")
    tids = system.perfmon.thread_ids("app")
    assert handle.tid in tids  # perfmon *sees* the thread exist...
    for tid in tids:
        # ...but reports a useless start address for every one of them.
        assert system.perfmon.thread_start_address(tid) == NTDLL_STUB_ADDRESS
    real_start = handle.deref().start_address
    assert system.perfmon.thread_start_address(handle.tid) != real_start
