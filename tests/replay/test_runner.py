"""Run-twice harness: clean factories pass, leaky fixtures fail loudly."""

from __future__ import annotations

import itertools

import pytest

from repro.replay.runner import run_twice_and_diff
from repro.simnet.trace import TraceLog


def _emit_fanout(log, names_in_order):
    """One 'broadcast' tick: the fixture's fan-out loop."""
    for seq, name in enumerate(names_in_order):
        log.emit("opc", "opc-group", "item-update", handle=name, seq=seq)


def _clean_factory(seed):
    log = TraceLog(clock=lambda: 100.0)
    _emit_fanout(log, ["pressure", "flow", "level"])
    return log


def test_identical_runs_produce_empty_diff():
    result = run_twice_and_diff(_clean_factory, seed=0, subject="clean")
    assert result.ok
    assert result.divergence is None
    assert result.events == result.events_second == 3
    assert result.fingerprint_first == result.fingerprint_second


def test_unordered_fanout_fixture_diverges_with_named_component():
    # Scratch fixture reproducing the bug class the replay checker exists
    # for: fan-out over an unordered container, so the visit order the
    # subscribers see differs between two runs of the "same" scenario.
    run_order = itertools.cycle([["pressure", "flow", "level"], ["level", "pressure", "flow"]])

    def leaky_factory(seed):
        log = TraceLog(clock=lambda: 100.0)
        _emit_fanout(log, next(run_order))
        return log

    result = run_twice_and_diff(leaky_factory, seed=0, subject="leaky")
    assert not result.ok
    divergence = result.divergence
    assert divergence is not None
    assert divergence.index == 0  # the very first fan-out event already differs
    assert divergence.component == "opc-group"
    assert divergence.event == "item-update"
    deltas = {delta.field: (delta.first, delta.second) for delta in divergence.deltas}
    assert deltas["detail.handle"] == ("pressure", "level")
    # The rendered report names the component and event for triage.
    text = divergence.render()
    assert "opc-group" in text and "item-update" in text


def test_class_level_counter_fixture_diverges():
    # The other classic: a class-level id counter leaking across runs.
    class Leaky:
        _ids = itertools.count(1)

    def leaky_factory(seed):
        log = TraceLog(clock=lambda: 5.0)
        log.emit("msq", "msq-manager", "send", message_id=next(Leaky._ids))
        return log

    result = run_twice_and_diff(leaky_factory, seed=0)
    assert not result.ok
    assert result.divergence.component == "msq-manager"
    assert {d.field for d in result.divergence.deltas} == {"detail.message_id"}


def test_payload_mismatch_with_identical_trace():
    payloads = itertools.cycle([{"rows": 3}, {"rows": 4}])

    def factory(seed):
        return _clean_factory(seed), next(payloads)

    result = run_twice_and_diff(factory, seed=0)
    assert not result.ok
    assert result.divergence is None
    assert result.payload_mismatch == {"first": {"rows": 3}, "second": {"rows": 4}}


def test_factory_must_return_a_trace():
    with pytest.raises(TypeError):
        run_twice_and_diff(lambda seed: {"not": "a trace"}, seed=0)


def test_result_wire_form_is_json_ready():
    import json

    result = run_twice_and_diff(_clean_factory, seed=3, subject="clean")
    wire = result.as_wire()
    assert wire["kind"] == "replay"
    assert wire["subject"] == "clean"
    assert wire["seed"] == 3
    assert wire["ok"] is True
    json.dumps(wire)  # must be serializable as-is
