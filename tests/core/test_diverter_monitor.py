"""Unit tests for the Message Diverter and the System Monitor."""

from repro.core.diverter import DiverterClient, MessageDiverter, inbox_queue_name
from repro.core.monitor import SystemMonitor
from repro.core.status import ComponentStatus
from repro.msq.manager import QueueManager

from tests.core.util import make_pair_world


def with_test_pc(seed=0):
    """Pair world plus an external test PC with a diverter client."""
    world = make_pair_world(
        seed=seed,
        subscriber_nodes=["testpc"],
        monitor_nodes=["testpc"],
    )
    world.add_machine("testpc")
    qmgr = QueueManager(world.kernel, world.network, world.network.nodes["testpc"])
    client = DiverterClient(
        node=world.network.nodes["testpc"],
        qmgr=qmgr,
        unit="test",
        pair_nodes=["alpha", "beta"],
        trace=world.trace,
    )
    monitor = SystemMonitor(world.kernel, world.network.nodes["testpc"])
    return world, client, monitor


def inbox_of(world, node):
    return world.pair.contexts[node].qmgr.open_queue(inbox_queue_name("test"))


def test_client_learns_primary_from_role_change_broadcast():
    world, client, _monitor = with_test_pc()
    assert client.primary is None
    world.start()
    world.run_for(1_000.0)
    assert client.primary == world.primary


def test_messages_buffered_until_primary_known_then_flushed():
    world, client, _monitor = with_test_pc()
    client.send({"n": 1})
    client.send({"n": 2})
    assert client.buffered_count == 2
    world.start()
    world.run_for(2_000.0)
    assert client.buffered_count == 0
    queue = inbox_of(world, world.primary)
    received = []
    while True:
        message = queue.receive()
        if message is None:
            break
        received.append(message.body["n"])
    assert sorted(received) == [1, 2]


def test_switchover_redirects_and_retries():
    world, client, _monitor = with_test_pc()
    world.start()
    world.run_for(1_000.0)
    old_primary = world.primary
    # Cut the primary's power, then send while the failover is happening:
    # these MSMQ messages cannot be acked by the dead node.
    world.systems[old_primary].power_off()
    for index in range(5):
        client.send({"n": index})
    world.run_for(5_000.0)
    new_primary = world.primary
    assert new_primary != old_primary
    assert client.primary == new_primary
    assert client.redirect_count >= 1
    queue = inbox_of(world, new_primary)
    bodies = []
    while True:
        message = queue.receive()
        if message is None:
            break
        bodies.append(message.body["n"])
    assert sorted(bodies) == [0, 1, 2, 3, 4]


def test_role_change_listener_invoked():
    world, client, _monitor = with_test_pc()
    changes = []
    client.on_primary_change(changes.append)
    world.start()
    world.run_for(1_000.0)
    assert changes == [world.primary]


def test_message_diverter_descriptor():
    diverter = MessageDiverter("unit1", "a", "b")
    assert diverter.queue_name == inbox_queue_name("unit1")
    assert diverter.nodes == ("a", "b")


# -- system monitor ------------------------------------------------------------


def test_monitor_collects_periodic_reports():
    world, _client, monitor = with_test_pc()
    world.start()
    world.run_for(3_000.0)
    assert monitor.reports_received > 4
    assert monitor.status_of(world.primary, "oftt-engine") is ComponentStatus.RUNNING
    assert monitor.role_of(world.primary) == "primary"
    assert monitor.current_primary() == world.primary


def test_monitor_sees_failure_and_switchover():
    world, _client, monitor = with_test_pc()
    world.start()
    world.run_for(3_000.0)
    old_primary = world.primary
    world.systems[old_primary].power_off()
    world.run_for(5_000.0)
    assert monitor.current_primary() == world.primary
    # The new primary reports its peer link down.
    assert monitor.status_of(world.primary, "peer-link") is ComponentStatus.FAILED
    assert monitor.unhealthy()


def test_monitor_transitions_and_staleness():
    world, _client, monitor = with_test_pc()
    world.start()
    world.run_for(3_000.0)
    primary = world.primary
    transitions = monitor.transitions(primary, "oftt-engine")
    assert transitions and transitions[0][1] is ComponentStatus.RUNNING
    staleness = monitor.staleness(primary, "oftt-engine")
    assert staleness is not None and staleness <= world.config.status_report_period + 100.0
    assert monitor.staleness("ghost", "x") is None


def test_monitor_render_contains_components():
    world, _client, monitor = with_test_pc()
    world.start()
    world.run_for(2_000.0)
    rendered = monitor.render()
    assert "oftt-engine" in rendered
    assert "synthetic" in rendered
    assert "primary" in rendered


def test_monitor_live_subscription():
    world, _client, monitor = with_test_pc()
    seen = []
    monitor.subscribe(lambda report: seen.append(report.component))
    world.start()
    world.run_for(2_000.0)
    assert "oftt-engine" in seen
