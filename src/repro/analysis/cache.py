"""On-disk result cache for ``oftt-lint``.

``make verify`` lints the whole tree on every run; most runs touch a
handful of files.  The cache keys results two ways so a stale entry can
never mask a new finding:

* **Per-file passes** (currently ``det``) see one file at a time, so
  their findings are cached per ``(path, content sha)``.  Any edit —
  including adding or removing a suppression comment — changes the sha
  and forces a re-run of exactly that file.
* **Whole-program passes** (``com``, ``race``, ``effects``, ``hot``) read
  cross-file context, so their findings are only reused when the *entire*
  project key matches: the sorted ``(path, sha)`` list of every analysed
  file plus the configuration (pass list, ``--max-k``, hot-manifest
  digest).  One changed byte anywhere re-runs them all.

Both halves are additionally keyed by a **rule-set version** — a digest
of every registered rule's id/slug/severity/pass — so upgrading the
toolkit invalidates everything.  A missing, corrupt, or foreign-schema
cache file is treated as empty; the cache is an accelerator, never a
source of truth.  ``--no-cache`` bypasses it entirely.

Cached findings are stored *after* suppression filtering (the comments
live in the hashed content) but *before* ``--relax`` downgrades and
sorting, which the CLI applies per invocation.
"""

from __future__ import annotations

# oftt-lint: file-ok[ambient-io] -- the cache is host-side tooling state;
# reading and writing it is the point.

import hashlib
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import AnalysisError, Finding, all_rules, is_known, lookup
from repro.analysis.walker import Pass, SourceFile, apply_suppressions

SCHEMA = "repro.lint-cache/v1"

#: Default cache location, relative to the invocation cwd.
DEFAULT_PATH = ".oftt-lint-cache.json"

#: Pass names whose findings depend only on the one file they anchor to.
PER_FILE_PASSES = frozenset({"det"})


def ruleset_version() -> str:
    """Digest over the full rule catalogue; changes when any rule does."""
    digest = hashlib.sha256()
    for entry in all_rules():
        digest.update(
            f"{entry.rule_id}|{entry.slug}|{int(entry.severity)}|{entry.pass_name}|{entry.summary}\n".encode("utf-8")
        )
    return digest.hexdigest()[:16]


def _content_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


def file_digest(path: str) -> str:
    """Content digest of an auxiliary input (e.g. the hot-root manifest)."""
    try:
        with open(path, "rb") as handle:
            return hashlib.sha256(handle.read()).hexdigest()[:16]
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc


def _project_key(shas: Dict[str, str], config_key: str) -> str:
    digest = hashlib.sha256()
    digest.update(config_key.encode("utf-8"))
    for path in sorted(shas):
        digest.update(f"\n{path}={shas[path]}".encode("utf-8"))
    return digest.hexdigest()[:16]


def _encode(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule.rule_id,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }


def _decode(entry: Dict[str, object]) -> Optional[Finding]:
    rule_id = entry.get("rule")
    if not isinstance(rule_id, str) or not is_known(rule_id):
        return None
    try:
        return Finding(
            lookup(rule_id),
            str(entry["path"]),
            int(entry["line"]),  # type: ignore[arg-type]
            int(entry["col"]),  # type: ignore[arg-type]
            str(entry["message"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


def _load(path: str) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("schema") != SCHEMA:
        return {}
    if data.get("ruleset") != ruleset_version():
        return {}
    return data


def _store(path: str, data: Dict[str, object]) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle, sort_keys=True, separators=(",", ":"))
            handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        # A read-only tree or full disk degrades to "no cache", silently:
        # lint results must not depend on cache writability.
        try:
            os.remove(tmp)
        except OSError:
            pass


def run_cached(
    files: Sequence[SourceFile],
    named_passes: Sequence[Tuple[str, Pass]],
    cache_path: str,
    config_key: str,
) -> Tuple[List[Finding], Dict[str, int]]:
    """Run *named_passes* with cache reuse; returns (findings, stats).

    Findings come back suppression-filtered but unsorted and
    un-relaxed — exactly what running the passes directly would yield.
    ``stats`` reports ``{"files_reused": n, "project_reused": 0|1}`` for
    the text reporter's one-line cache note.
    """
    shas = {f.path: _content_sha(f.source) for f in files}
    pass_names = ",".join(name for name, _ in named_passes)
    project_key = _project_key(shas, f"{config_key};passes={pass_names}")
    cached = _load(cache_path)
    stats = {"files_reused": 0, "project_reused": 0}

    project = cached.get("project")
    if isinstance(project, dict) and project.get("key") == project_key:
        entries = project.get("findings")
        if isinstance(entries, list):
            decoded = [_decode(e) for e in entries if isinstance(e, dict)]
            if all(f is not None for f in decoded):
                stats["project_reused"] = 1
                stats["files_reused"] = len(files)
                return [f for f in decoded if f is not None], stats

    old_files = cached.get("files")
    if not isinstance(old_files, dict):
        old_files = {}
    findings: List[Finding] = []
    new_files: Dict[str, Dict[str, object]] = {
        path: {"sha": sha, "passes": {}} for path, sha in shas.items()
    }
    for name, one_pass in named_passes:
        if name in PER_FILE_PASSES:
            findings.extend(_run_per_file(files, name, one_pass, shas, old_files, new_files, stats))
        else:
            fresh = apply_suppressions(one_pass(files), files)
            findings.extend(fresh)

    _store(
        cache_path,
        {
            "schema": SCHEMA,
            "ruleset": ruleset_version(),
            "project": {"key": project_key, "findings": [_encode(f) for f in findings]},
            "files": new_files,
        },
    )
    return findings, stats


def _run_per_file(
    files: Sequence[SourceFile],
    name: str,
    one_pass: Pass,
    shas: Dict[str, str],
    old_files: Dict[str, object],
    new_files: Dict[str, Dict[str, object]],
    stats: Dict[str, int],
) -> List[Finding]:
    reused: List[Finding] = []
    stale: List[SourceFile] = []
    for source_file in files:
        entry = old_files.get(source_file.path)
        hit: Optional[List[Finding]] = None
        if isinstance(entry, dict) and entry.get("sha") == shas[source_file.path]:
            stored = entry.get("passes", {})
            if isinstance(stored, dict) and name in stored and isinstance(stored[name], list):
                decoded = [_decode(e) for e in stored[name] if isinstance(e, dict)]
                if all(f is not None for f in decoded):
                    hit = [f for f in decoded if f is not None]
        if hit is None:
            stale.append(source_file)
        else:
            reused.extend(hit)
            stats["files_reused"] += 1
            new_files[source_file.path]["passes"][name] = [_encode(f) for f in hit]  # type: ignore[index]
    fresh: List[Finding] = []
    if stale:
        fresh = apply_suppressions(one_pass(stale), stale)
        by_path: Dict[str, List[Finding]] = {f.path: [] for f in stale}
        for finding in fresh:
            by_path.setdefault(finding.path, []).append(finding)
        for source_file in stale:
            per = by_path.get(source_file.path, [])
            new_files[source_file.path]["passes"][name] = [_encode(f) for f in per]  # type: ignore[index]
    return reused + fresh
