"""Planted HOT005: per-event instantiation of a class without __slots__."""


class Item:
    def __init__(self, key):
        self.key = key


class Hot:
    def run(self, key):
        return Item(key)  # expect: HOT005
