"""Unit tests for the trace log."""

from repro.simnet.kernel import SimKernel
from repro.simnet.trace import TraceLog


def build():
    kernel = SimKernel()
    return kernel, TraceLog(clock=lambda: kernel.now)


def test_emit_stamps_current_time():
    kernel, trace = build()
    kernel.schedule(25.0, trace.emit, "cat", "comp", "event")
    kernel.run()
    assert trace.records[0].time == 25.0


def test_select_filters_by_all_fields():
    kernel, trace = build()
    trace.emit("a", "x", "e1")
    trace.emit("a", "y", "e2")
    trace.emit("b", "x", "e1")
    assert len(trace.select(category="a")) == 2
    assert len(trace.select(component="x")) == 2
    assert len(trace.select(event="e1")) == 2
    assert len(trace.select(category="a", component="x")) == 1


def test_select_time_window():
    kernel, trace = build()
    for t in (10.0, 20.0, 30.0):
        kernel.schedule(t, trace.emit, "c", "comp", "tick")
    kernel.run()
    assert len(trace.select(since=15.0)) == 2
    assert len(trace.select(until=15.0)) == 1
    assert len(trace.select(since=15.0, until=25.0)) == 1


def test_select_window_is_half_open():
    """Windows are [since, until): the left edge is included, the right
    edge excluded, so adjacent windows tile without double-counting."""
    kernel, trace = build()
    for t in (10.0, 20.0, 30.0):
        kernel.schedule(t, trace.emit, "c", "comp", "tick")
    kernel.run()
    assert len(trace.select(since=20.0)) == 2  # left edge inclusive
    assert len(trace.select(until=20.0)) == 1  # right edge exclusive
    first = trace.select(since=10.0, until=20.0)
    second = trace.select(since=20.0, until=30.0)
    assert [r.time for r in first] == [10.0]
    assert [r.time for r in second] == [20.0]


def test_first_last_count():
    kernel, trace = build()
    trace.emit("c", "comp", "a")
    trace.emit("c", "comp", "b")
    trace.emit("c", "comp", "a")
    assert trace.first(event="a") is trace.records[0]
    assert trace.last(event="a") is trace.records[2]
    assert trace.count(event="a") == 2
    assert trace.first(event="missing") is None


def test_subscribe_streams_future_records():
    kernel, trace = build()
    seen = []
    trace.subscribe(lambda record: seen.append(record.event))
    trace.emit("c", "comp", "after")
    assert seen == ["after"]


def test_detail_kwargs_preserved():
    kernel, trace = build()
    record = trace.emit("c", "comp", "e", value=7, label="x")
    assert record.detail == {"value": 7, "label": "x"}


def test_dump_renders_tail():
    kernel, trace = build()
    for index in range(5):
        trace.emit("c", "comp", f"e{index}")
    dump = trace.dump(limit=2)
    assert "e3" in dump and "e4" in dump and "e0" not in dump


def test_as_wire_sorts_detail_keys_and_quantizes_floats():
    kernel, trace = build()
    record = trace.emit("c", "comp", "e", zulu=1, alpha=0.1 + 0.2)
    wire = record.as_wire()
    assert list(wire["detail"].keys()) == ["alpha", "zulu"]
    assert wire["detail"]["alpha"] == 0.3


def test_fingerprint_ignores_construction_order():
    kernel, trace_a = build()
    kernel2, trace_b = build()
    trace_a.emit("c", "comp", "e", a=1, b=2)
    trace_b.emit("c", "comp", "e", b=2, a=1)
    assert trace_a.fingerprint() == trace_b.fingerprint()
    trace_b.emit("c", "comp", "e2")
    assert trace_a.fingerprint() != trace_b.fingerprint()


def test_empty_trace_is_not_silently_replaced():
    """An empty TraceLog must still be treated as a real object (the
    falsy-``or`` bug this suite once had)."""
    kernel = SimKernel()
    trace = TraceLog(clock=lambda: kernel.now)
    assert len(trace) == 0
    from repro.simnet.network import Network

    network = Network(kernel, trace=trace)
    assert network.trace is trace
