# Developer entry points.  `make verify` is the CI gate: tier-1 tests,
# the static-analysis toolkit (see ANALYSIS.md), and the dynamic
# replay-divergence gate (see REPLAY.md).

PY := PYTHONPATH=src python

.PHONY: test lint lint-tests lint-json replay replay-json verify

test:
	$(PY) -m pytest -x -q

lint:
	$(PY) -m repro.analysis src/repro --strict

# Tests are linted with the per-directory profile: the ambient DET rules
# (unseeded randomness, entropy, environment reads) are relaxed because
# property-style tests and CLI fixtures use them deliberately.
lint-tests:
	$(PY) -m repro.analysis tests --strict --relax tests=DET002,DET003,DET006

lint-json:
	$(PY) -m repro.analysis src/repro --strict --format json

replay:
	$(PY) -m repro.replay --gate

replay-json:
	$(PY) -m repro.replay --gate --format json

verify: test lint lint-tests replay
