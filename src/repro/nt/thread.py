"""Simulated NT threads with register contexts.

A thread's *body* is a generator factory: ``body(thread)`` returns a
generator that the simulation kernel drives as a cooperative process.
The register context (program counter, stack pointer) advances as the
body runs, giving ``GetThreadContext()`` something meaningful to return
for the checkpoint walkthrough.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional, TYPE_CHECKING

from repro.errors import ThreadDead
from repro.nt.memory import STACK, MemoryRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.nt.process import NTProcess

ThreadBody = Callable[["NTThread"], Generator[Any, Any, Any]]


class ThreadState(enum.Enum):
    """Lifecycle of an NT thread."""

    READY = "ready"
    RUNNING = "running"
    SUSPENDED = "suspended"
    TERMINATED = "terminated"


@dataclass
class ThreadContext:
    """A register snapshot, as returned by ``GetThreadContext``."""

    program_counter: int = 0x0040_0000
    stack_pointer: int = 0x0012_F000
    registers: Dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "ThreadContext":
        """Deep copy for checkpointing."""
        return ThreadContext(
            program_counter=self.program_counter,
            stack_pointer=self.stack_pointer,
            registers=copy.deepcopy(self.registers),
        )

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form used in serialized checkpoints."""
        return {
            "program_counter": self.program_counter,
            "stack_pointer": self.stack_pointer,
            "registers": dict(self.registers),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ThreadContext":
        """Inverse of :meth:`as_dict`."""
        return cls(
            program_counter=data["program_counter"],
            stack_pointer=data["stack_pointer"],
            registers=dict(data["registers"]),
        )


class NTThread:
    """A simulated NT thread.

    Parameters
    ----------
    process:
        Owning process.
    name:
        Human-readable name (also names the stack region).
    body:
        Optional generator factory; a thread without a body is a pure
        kernel object (useful in tests).
    dynamic:
        True when created at runtime via ``CreateThread`` — such threads
        are invisible to the standard enumeration APIs (the paper's §3.1
        problem) unless an IAT hook recorded them.
    """

    def __init__(
        self,
        process: "NTProcess",
        name: str,
        body: Optional[ThreadBody] = None,
        dynamic: bool = False,
        start_address: int = 0x0040_1000,
    ) -> None:
        # tids are allocated per-process (see NTProcess.allocate_tid);
        # the tid names the stack region below, so it must be stable
        # across relaunches for checkpoint images to round-trip.
        self.tid = process.allocate_tid()
        self.process = process
        self.name = name
        self.body = body
        self.dynamic = dynamic
        self.start_address = start_address
        self.state = ThreadState.READY
        self.context = ThreadContext(program_counter=start_address)
        self.exit_code: Optional[int] = None
        self.stack: MemoryRegion = process.address_space.map_region(f"stack:{name}:{self.tid}", STACK)
        self._sim_process = None  # repro.simnet.kernel.Process once started

    # -- execution ---------------------------------------------------------

    def start(self) -> None:
        """Begin executing the body on the simulation kernel (idempotent)."""
        if self.state is ThreadState.TERMINATED:
            raise ThreadDead(f"thread {self.name} already terminated")
        if self.state is ThreadState.RUNNING:
            return  # already executing; starting twice must not fork the body
        self.state = ThreadState.RUNNING
        if self.body is not None:
            generator = self._instrumented(self.body(self))
            self._sim_process = self.process.system.kernel.spawn(
                generator, name=f"{self.process.name}/{self.name}"
            )
            self._sim_process.add_callback(self._on_body_finished)

    def _instrumented(self, inner: Generator[Any, Any, Any]) -> Generator[Any, Any, Any]:
        """Advance the register context each time the body resumes."""
        result = None
        try:
            while True:
                target = inner.send(result)
                self.context.program_counter += 4
                result = yield target
        except StopIteration as stop:
            return stop.value

    def _on_body_finished(self, sim_process: Any) -> None:
        if self.state is ThreadState.SUSPENDED:
            return  # deliberate suspension, not a body exit
        if self.state is not ThreadState.TERMINATED:
            self.state = ThreadState.TERMINATED
            self.exit_code = 0
            self.process._on_thread_exit(self)

    def terminate(self, exit_code: int = 1) -> None:
        """Kill the thread (models ``TerminateThread``)."""
        if self.state is ThreadState.TERMINATED:
            return
        self.state = ThreadState.TERMINATED
        self.exit_code = exit_code
        if self._sim_process is not None:
            self._sim_process.kill()
        self.process._on_thread_exit(self)

    def suspend(self) -> None:
        """Freeze the thread; its sim process is interrupted-killed but its
        memory and context remain (models a hang / SuspendThread)."""
        if self.state is not ThreadState.RUNNING:
            return
        self.state = ThreadState.SUSPENDED
        if self._sim_process is not None:
            self._sim_process.kill()
            self._sim_process = None

    def resume(self) -> None:
        """Restart the body after a suspend (fresh generator, same memory).

        The real OFTT restarts the application entry point and relies on
        the restored checkpoint for state, so a fresh generator over the
        preserved address space is the faithful model.
        """
        if self.state is not ThreadState.SUSPENDED:
            raise ThreadDead(f"resume of non-suspended thread {self.name}")
        self.state = ThreadState.READY
        self.start()

    # -- checkpointing hooks -----------------------------------------------

    def capture_context(self) -> ThreadContext:
        """What ``GetThreadContext`` returns."""
        if self.state is ThreadState.TERMINATED:
            raise ThreadDead(f"GetThreadContext on dead thread {self.name}")
        return self.context.snapshot()

    def __repr__(self) -> str:
        flag = " dynamic" if self.dynamic else ""
        return f"NTThread({self.name}, tid={self.tid}, {self.state.value}{flag})"
