"""Quickstart: make an application fault tolerant with OFTT.

Builds the smallest meaningful deployment — two simulated NT machines on
an Ethernet, an application that counts upward, and the OFTT middleware —
then pulls the plug on the primary and shows the backup continuing from
the last checkpoint.

Run:  python examples/quickstart.py
"""

from repro.core import OfttApi, OfttApplication, OfttConfig, OfttPair
from repro.nt import NTSystem
from repro.simnet import Network, RngStreams, SimKernel, Timeout, TraceLog


class CounterApp(OfttApplication):
    """An application whose only state is a counter it must not lose.

    Integration with OFTT is the three marked lines in ``launch`` — the
    paper's "include a header file, insert a single line" story.
    """

    name = "counter"

    def launch(self, image):
        context = self.context
        process = context.system.create_process(self.name)
        self.process = process

        # Restore from the checkpoint image on relaunch/failover.
        restored = image.get("globals", {}).get("count", 0) if image else 0
        process.address_space.write("count", restored)

        def main(_thread):
            def loop():
                while True:
                    yield Timeout(100.0)
                    space = process.address_space
                    space.write("count", space.read("count") + 1)

            return loop()

        process.create_thread("main", body=main, dynamic=False)
        process.start()

        api = OfttApi(context, self.name, process)      # (1) bind the API
        api.OFTTInitialize(stateful=True)               # (2) the one required call
        api.OFTTSelSave("globals", ["count"])           # (3) optional: designate state
        self.api = api
        self.launch_count += 1
        return process


def main() -> None:
    # -- substrate: kernel, network, two NT machines ------------------------
    kernel = SimKernel()
    rngs = RngStreams(seed=2026)
    trace = TraceLog(clock=lambda: kernel.now)
    network = Network(kernel, rngs, trace)
    network.add_link("lan0", latency=0.5, jitter=0.1)
    systems = {}
    for name in ("node1", "node2"):
        network.add_node(name)
        network.attach(name, "lan0")
        systems[name] = NTSystem(kernel, network.nodes[name], rngs, trace)
        systems[name].boot_immediately()

    # -- the OFTT pair -------------------------------------------------------
    pair = OfttPair(network, systems, OfttConfig(), CounterApp, unit="quickstart", trace=trace)
    pair.start()
    pair.settle()
    print(f"pair formed: primary={pair.primary_node()}, backup={pair.backup_node()}")

    # -- run, then fail the primary -------------------------------------------
    kernel.run(until=10_000.0)
    primary = pair.primary_node()
    count_before = pair.apps[primary].process.address_space.read("count")
    print(f"t=10s  count on {primary}: {count_before}")

    print(f"t=10s  POWERING OFF {primary}")
    systems[primary].power_off()
    kernel.run(until=12_000.0)

    survivor = pair.primary_node()
    count_after = pair.apps[survivor].process.address_space.read("count")
    print(f"t=12s  {survivor} took over; count continued at {count_after}")
    assert survivor != primary
    assert count_after >= count_before - 15, "state survived within one checkpoint window"

    kernel.run(until=20_000.0)
    print(f"t=20s  count on {survivor}: {pair.apps[survivor].process.address_space.read('count')}")
    print("\nTimeline of engine decisions:")
    for record in trace.select(category="engine"):
        if record.event in ("role-decided", "peer-lost", "takeover"):
            print(f"  {record}")


if __name__ == "__main__":
    main()
