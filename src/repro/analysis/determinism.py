"""Pass 1 — determinism lint (DET rules).

The seed-replay guarantee (same seed ⇒ identical trace, see
:mod:`repro.simnet.kernel`) only holds while every source of
nondeterminism is funnelled through :class:`repro.simnet.random.RngStreams`
and the simulated clock.  This pass flags the ambient alternatives:

* DET001 ``wall-clock``       — host time (``time.time``, ``datetime.now``, ...)
* DET002 ``unseeded-random``  — module-level ``random.*`` / ``numpy.random.*``
* DET003 ``entropy``          — ``os.urandom``, ``uuid.uuid1/4``, ``secrets.*``
* DET004 ``unordered-fanout`` — iterating a ``set`` (or ``.keys()`` of one)
  while scheduling events; set order varies with PYTHONHASHSEED
* DET005 ``id-ordering``      — ``id()`` used to order or key anything
* DET006 ``ambient-io``       — ``os.environ``/``open``/filesystem reads
  feeding sim behaviour

Suppress deliberate uses in place, e.g. the harness timing its own wall
run: ``# oftt-lint: ok[wall-clock]``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.findings import Finding, Severity, rule
from repro.analysis.walker import SourceFile, dotted_name, import_aliases, resolve_call_name

WALL_CLOCK = rule(
    "DET001", "wall-clock", Severity.ERROR, "det",
    "Host wall-clock read; sim code must use kernel.now.",
)
UNSEEDED_RANDOM = rule(
    "DET002", "unseeded-random", Severity.ERROR, "det",
    "Module-level random draw; use a seeded RngStreams stream.",
)
ENTROPY = rule(
    "DET003", "entropy", Severity.ERROR, "det",
    "OS entropy source (urandom/uuid4/secrets) breaks seed replay.",
)
UNORDERED_FANOUT = rule(
    "DET004", "unordered-fanout", Severity.ERROR, "det",
    "Event fan-out iterates a set; order varies with PYTHONHASHSEED.",
)
ID_ORDERING = rule(
    "DET005", "id-ordering", Severity.ERROR, "det",
    "id()-based ordering depends on allocator addresses.",
)
AMBIENT_IO = rule(
    "DET006", "ambient-io", Severity.ERROR, "det",
    "Environment/filesystem read; sim inputs must come from config or seed.",
)

#: Callables (resolved dotted names) that read the host clock.
_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time", "time.clock",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today", "datetime.now", "datetime.utcnow",
}

#: Draw functions on the global `random` module (random.Random methods are fine).
_RANDOM_DRAWS = {
    "random", "randint", "randrange", "random.choice", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate", "betavariate",
    "triangular", "vonmisesvariate", "paretovariate", "weibullvariate",
    "lognormvariate", "getrandbits", "randbytes", "seed",
}

_ENTROPY_CALLS = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}

_AMBIENT_CALLS = {
    "os.getenv", "os.environ.get", "os.listdir", "os.scandir", "os.walk",
    "os.stat", "os.getcwd", "os.path.exists", "os.path.getmtime", "os.path.getsize",
    "os.cpu_count", "open", "io.open",
}
_AMBIENT_ATTRS = {"os.environ", "sys.argv"}

#: Call names that constitute event fan-out when made inside a loop body.
_FANOUT_CALLS = {"schedule", "spawn", "send", "succeed", "interrupt", "fire", "notify"}


def _is_set_expr(node: ast.AST, set_attrs: Set[str]) -> Optional[str]:
    """A human label when *node* is statically set-typed, else None."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee in ("set", "frozenset"):
            return f"{callee}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr == "keys":
            inner = _is_set_expr(node.func.value, set_attrs)
            if inner is not None:
                return f"keys() of {inner}"
        if isinstance(node.func, ast.Attribute) and node.func.attr in ("union", "intersection", "difference", "symmetric_difference"):
            if _is_set_expr(node.func.value, set_attrs) is not None:
                return f"set.{node.func.attr}(...)"
    if isinstance(node, (ast.BinOp,)) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        left = _is_set_expr(node.left, set_attrs)
        right = _is_set_expr(node.right, set_attrs)
        if left is not None and right is not None:
            return "set expression"
    name = dotted_name(node)
    if name is not None and name in set_attrs:
        return f"set attribute {name}"
    return None


def _set_typed_attrs(tree: ast.Module) -> Set[str]:
    """``self.x`` attribute paths assigned a set anywhere in the module."""
    attrs: Set[str] = set()
    for node in ast.walk(tree):
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.target is not None:
            targets, value = [node.target], node.value
            annotation = dotted_name(node.annotation) or ""
            if annotation.split(".")[-1] in ("Set", "FrozenSet", "set", "frozenset"):
                name = dotted_name(node.target)
                if name is not None:
                    attrs.add(name)
        if value is None:
            continue
        if isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call) and dotted_name(value.func) in ("set", "frozenset")
        ):
            for target in targets:
                name = dotted_name(target)
                if name is not None:
                    attrs.add(name)
    return attrs


def _calls_fanout(body: Sequence[ast.stmt]) -> Optional[ast.Call]:
    """First event-scheduling call inside *body*, if any."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                if callee is not None and callee.split(".")[-1] in _FANOUT_CALLS:
                    return node
    return None


def _check_file(source_file: SourceFile) -> List[Finding]:
    findings: List[Finding] = []
    tree = source_file.tree
    if tree is None:
        return findings
    aliases = import_aliases(tree)
    set_attrs = _set_typed_attrs(tree)
    path = source_file.path

    def emit(rule_obj, node: ast.AST, message: str) -> None:
        findings.append(Finding(rule_obj, path, node.lineno, node.col_offset, message))

    for node in ast.walk(tree):
        # -- call-shaped rules ------------------------------------------
        if isinstance(node, ast.Call):
            callee = resolve_call_name(node, aliases)
            if callee is not None:
                if callee in _WALL_CLOCK_CALLS:
                    emit(WALL_CLOCK, node, f"{callee}() reads the host clock; use kernel.now")
                elif callee in _ENTROPY_CALLS or callee.startswith("secrets."):
                    emit(ENTROPY, node, f"{callee}() draws OS entropy; derive from the master seed")
                elif callee.startswith("numpy.random.") or callee.startswith("np.random."):
                    emit(UNSEEDED_RANDOM, node, f"{callee}() uses numpy's global RNG; use RngStreams")
                elif callee == "random.Random" and not node.args and not node.keywords:
                    emit(UNSEEDED_RANDOM, node, "random.Random() with no seed; pass a seed from RngStreams")
                elif "." in callee:
                    head, _, tail = callee.partition(".")
                    if aliases.get(head, head) == "random" and tail in _RANDOM_DRAWS:
                        emit(
                            UNSEEDED_RANDOM, node,
                            f"{callee}() draws from the shared global RNG; use rng.stream(name)",
                        )
                elif callee in _RANDOM_DRAWS and aliases.get(callee, "") == f"random.{callee}":
                    emit(UNSEEDED_RANDOM, node, f"{callee}() imported from random; use rng.stream(name)")
                if callee in _AMBIENT_CALLS:
                    emit(AMBIENT_IO, node, f"{callee}() reads ambient host state")
            # id()-based ordering: id used as a sort key or inside key funcs
            if dotted_name(node.func) in ("sorted", "min", "max"):
                for keyword in node.keywords:
                    if keyword.arg == "key":
                        key_src = ast.dump(keyword.value)
                        if (isinstance(keyword.value, ast.Name) and keyword.value.id == "id") or "func=Name(id='id'" in key_src:
                            emit(ID_ORDERING, node, "ordering keyed on id(); addresses differ across runs")
        # -- attribute-shaped ambient reads -----------------------------
        if isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name in _AMBIENT_ATTRS and isinstance(node.ctx, ast.Load):
                emit(AMBIENT_IO, node, f"{name} read; sim inputs must come from config or seed")
        # -- id() in comparisons ----------------------------------------
        if isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            if any(
                isinstance(op, ast.Call) and dotted_name(op.func) == "id" for op in operands
            ) and any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops):
                emit(ID_ORDERING, node, "comparison on id(); addresses differ across runs")
        # -- unordered fan-out ------------------------------------------
        if isinstance(node, (ast.For, ast.AsyncFor)):
            label = _is_set_expr(node.iter, set_attrs)
            if label is not None:
                fanout = _calls_fanout(node.body)
                if fanout is not None:
                    emit(
                        UNORDERED_FANOUT, node,
                        f"loop over {label} schedules events "
                        f"({dotted_name(fanout.func)} at line {fanout.lineno}); wrap in sorted()",
                    )
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            for comp in node.generators:
                label = _is_set_expr(comp.iter, set_attrs)
                if label is not None and isinstance(node.elt, ast.Call):
                    callee = dotted_name(node.elt.func)
                    if callee is not None and callee.split(".")[-1] in _FANOUT_CALLS:
                        emit(UNORDERED_FANOUT, node, f"comprehension over {label} schedules events; wrap in sorted()")
    return findings


def run(files: Sequence[SourceFile]) -> List[Finding]:
    """Pass entry point."""
    findings: List[Finding] = []
    for source_file in files:
        findings.extend(_check_file(source_file))
    return findings
