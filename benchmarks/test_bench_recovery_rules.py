"""Benchmark X5: recovery rules — local restart vs failover.

Paper mechanism (§2.2.1): "the recovery rule ... specifies whether to
initiate a local recovery (e.g., a transient fault), or to transfer
control to the backup node (e.g., a permanent fault)."

This harness injects the same transient application crash under two
rules and reports recovery style and latency.

Expected shape: the local-restart rule recovers in place (no role churn,
no switchover, redundancy preserved); the always-failover rule hands over
to the peer.  Both recover.
"""

from repro.harness.experiments import exp_recovery_rules

from benchmarks.conftest import print_rows


def test_bench_recovery_rules(benchmark):
    rows = benchmark.pedantic(lambda: exp_recovery_rules(seed=17), rounds=1, iterations=1)
    print_rows("X5: transient app crash under each recovery rule", rows)
    local, failover = rows
    assert local["recovered"] and failover["recovered"]
    assert not local["switched_over"] and local["local_restarts"] == 1
    assert failover["switched_over"] and failover["local_restarts"] == 0
