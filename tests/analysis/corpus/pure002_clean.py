"""Clean twin of pure002: the task is a module-level function."""

from repro.perf.executor import parallel_map


def double(value):
    return value * 2


def main(values):
    return parallel_map(double, values)
