"""Clean twin of race101: both writes are direct.

This is RACE001 territory — the effects pass must stay silent so the
conflict is reported (and suppressible) exactly once.
"""


class Widget:
    def __init__(self, kernel):
        self.kernel = kernel
        self.state = 0

    def start(self):
        self.kernel.schedule(5.0, self.on_tick)
        self.kernel.schedule(5.0, self.on_poll)

    def on_poll(self):
        self.state = 2

    def on_tick(self):
        self.state = 1
