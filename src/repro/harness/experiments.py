"""Experiment runners — one per entry of the DESIGN.md experiment index.

Every function is deterministic for a given seed and returns plain data
(dicts/lists) that the benchmarks print via
:mod:`~repro.harness.reporting` and that EXPERIMENTS.md records.

Experiment ids:

========  ====================================================
F1a/F1b   reference configurations carry live plant data
F2        the Figure 2 architecture is fully wired
F3/T1     the demo testbed matches Table 1
D-a..D-d  the four §4 failure demonstrations, measured
X1        checkpoint cost: full vs selective vs incremental
X2        detection latency vs heartbeat period/timeout
X3        startup retries vs the original shutdown logic
X4        diverter vs naive sender: message loss on switchover
X5        recovery rules: local restart vs failover
X6        DCOM RPC failure behaviour vs OFTT detection
X7        API transparency levels: overhead vs staleness
========  ====================================================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.synthetic import SyntheticStateApp
from repro.core.cluster import OfttPair
from repro.core.config import GiveUpPolicy, OfttConfig, RecoveryRule, replace_config
from repro.core.engine import ENGINE_PORT
from repro.core.roles import Role
from repro.errors import OfttError
from repro.faults.campaign import Campaign
from repro.faults.faultlib import (
    AppCrash,
    AppHang,
    BlueScreen,
    MiddlewareCrash,
    NodeFailure,
    NodeReboot,
    TransientAppCrash,
)
from repro.faults.injector import FaultInjector
from repro.harness.scenario import (
    DEMO_NODES,
    DemoScenario,
    build_demo,
    build_integrated,
    build_pair_env,
    build_remote_monitoring,
)
from repro.metrics import failover_timing, summarize
from repro.nt.system import NTSystem
from repro.simnet.kernel import SimKernel
from repro.simnet.network import Network
from repro.simnet.random import RngStreams
from repro.simnet.trace import TraceLog


# ---------------------------------------------------------------------------
# F1a / F1b — reference configurations
# ---------------------------------------------------------------------------

def exp_reference_configs(seed: int = 0, warmup: float = 20_000.0) -> List[Dict[str, Any]]:
    """Both Figure 1 configurations: data flows, and failover preserves it."""
    rows: List[Dict[str, Any]] = []

    remote = build_remote_monitoring(seed=seed)
    remote.start()
    remote.run_for(warmup)
    app = remote.primary_app()
    updates_before = app.updates_seen()
    primary_before = remote.pair.primary_node()
    remote.systems[primary_before].power_off()
    remote.run_for(15_000.0)
    after = remote.primary_app()
    rows.append(
        {
            "config": "F1a remote-monitoring",
            "primary_before": primary_before,
            "primary_after": remote.pair.primary_node(),
            "updates_before": updates_before,
            "updates_after_failover": after.updates_seen() if after else 0,
            "survived": after is not None and after.updates_seen() > 0,
        }
    )

    integrated = build_integrated(seed=seed)
    integrated.start()
    integrated.run_for(warmup)
    primary_before = integrated.pair.primary_node()
    _server, client = integrated.pair.all_apps[primary_before]
    updates_before = client.updates_seen()
    integrated.systems[primary_before].power_off()
    integrated.run_for(15_000.0)
    primary_after = integrated.pair.primary_node()
    client_after = integrated.pair.all_apps[primary_after][1] if primary_after else None
    rows.append(
        {
            "config": "F1b integrated",
            "primary_before": primary_before,
            "primary_after": primary_after,
            "updates_before": updates_before,
            "updates_after_failover": client_after.updates_seen() if client_after else 0,
            "survived": client_after is not None and client_after.updates_seen() > 0,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# F2 — the Figure 2 architecture inventory
# ---------------------------------------------------------------------------

def exp_architecture(seed: int = 0, warmup: float = 15_000.0) -> Dict[str, Any]:
    """Verify every Figure 2 component exists and exchanges data."""
    demo = build_demo(seed=seed)
    demo.start()
    demo.run_for(warmup)
    primary = demo.pair.primary_node()
    backup = demo.pair.backup_node()
    primary_engine = demo.pair.engines[primary]
    backup_engine = demo.pair.engines[backup]
    app = demo.pair.apps[primary]
    return {
        "primary": primary,
        "backup": backup,
        "engine_processes_alive": primary_engine.alive and backup_engine.alive,
        "ftim_linked": app.api is not None and app.api.ftim is not None,
        "ftim_heartbeats": app.api.ftim.heartbeats_sent,
        "checkpoints_sent": primary_engine.stats()["checkpoints_tx"],
        "checkpoints_mirrored": backup_engine.stats()["checkpoints_rx"],
        "checkpoint_acked_seq": primary_engine.acked_sequence,
        "diverter_messages": demo.diverter_client.sent_count,
        "monitor_reports": demo.monitor.reports_received,
        "monitor_sees_primary": demo.monitor.current_primary() == primary,
        "app_running_on_backup": demo.pair.apps[backup].running,  # must be False
    }


# ---------------------------------------------------------------------------
# F3 / T1 — the demonstration configuration
# ---------------------------------------------------------------------------

def exp_demo_config(seed: int = 0, warmup: float = 10_000.0) -> List[Dict[str, Any]]:
    """Regenerate Table 1: software elements per node, verified live."""
    demo = build_demo(seed=seed)
    demo.start()
    demo.run_for(warmup)
    primary = demo.pair.primary_node()
    rows = []
    for node in DEMO_NODES:
        engine = demo.pair.engines[node]
        app = demo.pair.apps[node]
        rows.append(
            {
                "node": node,
                "role": engine.role.value,
                "software": "OFTT Engine + Call Track application (linked to OFTT Client FTIM)",
                "engine_alive": engine.alive,
                "app_running": app.running,
                "expected_app_running": node == primary,
            }
        )
    rows.append(
        {
            "node": "test-pc",
            "role": "test-and-interface",
            "software": "OFTT System Monitor + Telephone System Simulator + Calling History generator",
            "engine_alive": False,
            "app_running": demo.telephone.running,
            "expected_app_running": True,
        }
    )
    return rows


# ---------------------------------------------------------------------------
# D-a .. D-d — the four failure demonstrations
# ---------------------------------------------------------------------------

def exp_failover_demos(seed: int = 0, warmup: float = 20_000.0, gap: float = 10_000.0) -> List[Dict[str, Any]]:
    """Run demos (a)-(d) sequentially on one testbed, measuring each.

    After each failover the failed node is rebooted and rejoins as
    backup, so every demo starts from a healthy pair — mirroring how the
    original demonstration would be reset between cases.
    """
    demo = build_demo(seed=seed)
    demo.start()
    demo.run_for(warmup)
    campaign = Campaign(demo.kernel, demo, settle_timeout=30_000.0)
    rows: List[Dict[str, Any]] = []

    demo_faults = [
        ("a", lambda node: NodeFailure(node)),
        ("b", lambda node: BlueScreen(node)),
        ("c", lambda node: AppCrash(node, "calltrack")),
        ("d", lambda node: MiddlewareCrash(node)),
    ]
    for demo_id, make_fault in demo_faults:
        primary = demo.pair.primary_node()
        generated_before = demo.history.event_count
        app_before = demo.primary_app()
        processed_before = app_before.events_processed() if app_before else 0
        fault_time = demo.kernel.now
        record = campaign.run_fault(make_fault(primary))
        surviving = demo.pair.primary_node()
        timing = failover_timing(demo.trace, fault_time, surviving) if surviving else None
        demo.run_for(gap)
        app_after = demo.primary_app()
        rows.append(
            {
                "demo": demo_id,
                "fault": record.fault,
                "continued_operation": record.recovered,
                "switched_over": record.switched_over,
                "recovery_ms": record.recovery_latency,
                "detection_ms": timing.detection_latency if timing else None,
                "events_before_fault": processed_before,
                "events_generated_total": demo.history.event_count,
                "events_processed_after": app_after.events_processed() if app_after else 0,
                "events_lost": (demo.history.event_count - app_after.events_processed()) if app_after else None,
            }
        )
        # Repair: bring the failed machine back and rejoin the pair —
        # except for demo (c)/(d) process-level faults, where the machine
        # never went down.
        failed_system = demo.systems[primary]
        if failed_system.state.value in ("off", "bluescreen"):
            FaultInjector(demo.kernel, demo).inject_now(NodeReboot(primary, reinstall=True))
        elif not demo.pair.engines[primary].alive:
            demo.pair.reinstall_node(primary)
        demo.run_for(gap)
    return rows


# ---------------------------------------------------------------------------
# X1 — checkpoint cost
# ---------------------------------------------------------------------------

def _pair_env(seed: int, config: OfttConfig, app_factory):
    """A minimal two-node environment hosting an arbitrary app pair."""
    return build_pair_env(seed=seed, config=config, app_factory=app_factory)


def _BaseInit(scenario: DemoScenario, seed: int) -> None:
    scenario.seed = seed
    scenario.kernel = SimKernel()
    scenario.rngs = RngStreams(seed)
    scenario.trace = TraceLog(clock=lambda: scenario.kernel.now)
    scenario.network = Network(scenario.kernel, scenario.rngs, scenario.trace)
    from repro.simnet.partitions import PartitionController

    scenario.partitions = PartitionController(scenario.network)
    scenario.systems = {}
    scenario.fieldbuses = {}
    scenario.lans = ["lan0"]
    scenario.network.add_link("lan0", latency=0.5, jitter=0.1)


def exp_checkpoint_cost(
    seed: int = 0,
    cold_sizes_kb: Optional[List[int]] = None,
    run_time: float = 20_000.0,
) -> List[Dict[str, Any]]:
    """X1: bytes per checkpoint for full/selective/incremental capture."""
    cold_sizes_kb = cold_sizes_kb or [16, 64, 256]
    rows: List[Dict[str, Any]] = []
    for cold_kb in cold_sizes_kb:
        for mode in ("full", "selective", "incremental"):
            scenario = _pair_env(
                seed,
                OfttConfig(),
                lambda m=mode, c=cold_kb: SyntheticStateApp(cold_kb=c, mode=m),
            )
            scenario.pair.start()
            scenario.pair.settle()
            scenario.run_for(run_time)
            primary = scenario.pair.primary_node()
            engine = scenario.pair.engines[primary]
            app = scenario.pair.apps[primary]
            # Measure what actually crossed the wire (pre-merge sizes, so
            # incremental deltas report their real transfer cost).
            sizes = engine.checkpoint_sizes
            rows.append(
                {
                    "cold_kb": cold_kb,
                    "mode": mode,
                    "checkpoints": app.api.ftim.checkpoints_taken,
                    "mean_bytes": sum(sizes) / len(sizes) if sizes else 0,
                    "acked_seq": engine.acked_sequence,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# X2 — detection latency vs heartbeat settings
# ---------------------------------------------------------------------------

def exp_detection_latency(
    seed: int = 0,
    settings: Optional[List[Dict[str, float]]] = None,
    warmup: float = 10_000.0,
) -> List[Dict[str, Any]]:
    """X2: how fast a hang is detected for each (period, timeout) pair.

    Uses an application *hang* so only the heartbeat path (not the exit
    hook) can detect it.
    """
    settings = settings or [
        {"period": 50.0, "timeout": 200.0},
        {"period": 100.0, "timeout": 500.0},
        {"period": 250.0, "timeout": 1_000.0},
        {"period": 500.0, "timeout": 2_000.0},
    ]
    rows: List[Dict[str, Any]] = []
    for setting in settings:
        config = replace_config(
            OfttConfig(),
            heartbeat_period=setting["period"],
            heartbeat_timeout=setting["timeout"],
        )
        scenario = _pair_env(seed, config, lambda: SyntheticStateApp(cold_kb=4, mode="selective"))
        scenario.pair.start()
        scenario.pair.settle()
        scenario.run_for(warmup)
        primary = scenario.pair.primary_node()
        fault_time = scenario.kernel.now
        FaultInjector(scenario.kernel, scenario).inject_now(AppHang(primary, "synthetic"))
        # Run until the engine notices.
        detected = None
        deadline = fault_time + setting["timeout"] * 4 + 5_000.0
        while scenario.kernel.now < deadline:
            scenario.run_for(10.0)
            record = scenario.trace.first(
                category="engine", component=primary, event="heartbeat-timeout", since=fault_time
            )
            if record is not None:
                detected = record.time
                break
        rows.append(
            {
                "heartbeat_period_ms": setting["period"],
                "timeout_ms": setting["timeout"],
                "detection_ms": (detected - fault_time) if detected is not None else None,
                "detected": detected is not None,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# X3 — startup non-determinism vs retry logic
# ---------------------------------------------------------------------------

def exp_startup(
    seeds: Optional[List[int]] = None,
    retry_settings: Optional[List[int]] = None,
    startup_wait: float = 300.0,
    boot_jitter: float = 1_500.0,
) -> List[Dict[str, Any]]:
    """X3: rate of false shutdowns with the original vs the retry logic.

    Reproduces §3.2: nodes boot with large random skew; under the
    original logic (no retries, give-up = SHUTDOWN) "the first node that
    starts up would frequently shut down"; retries fix it.
    """
    seeds = seeds if seeds is not None else list(range(20))
    retry_settings = retry_settings if retry_settings is not None else [0, 1, 3, 5]
    rows: List[Dict[str, Any]] = []
    for retries in retry_settings:
        shutdowns = 0
        stable = 0
        for seed in seeds:
            config = replace_config(
                OfttConfig(),
                startup_wait=startup_wait,
                startup_retries=retries,
                give_up_policy=GiveUpPolicy.SHUTDOWN,
            )
            outcome = _run_startup_once(seed, config, boot_jitter)
            if outcome == "shutdown":
                shutdowns += 1
            elif outcome == "stable":
                stable += 1
        rows.append(
            {
                "retries": retries,
                "runs": len(seeds),
                "false_shutdowns": shutdowns,
                "stable_pairs": stable,
                "shutdown_rate": shutdowns / len(seeds),
            }
        )
    return rows


def _run_startup_once(seed: int, config: OfttConfig, boot_jitter: float) -> str:
    kernel = SimKernel()
    rngs = RngStreams(seed)
    trace = TraceLog(clock=lambda: kernel.now)
    network = Network(kernel, rngs, trace)
    network.add_link("lan0", latency=0.5, jitter=0.1)
    systems: Dict[str, NTSystem] = {}
    for name in ("alpha", "beta"):
        network.add_node(name)
        network.attach(name, "lan0")
        systems[name] = NTSystem(
            kernel, network.nodes[name], rngs, trace, boot_time=100.0, boot_jitter=boot_jitter
        )

    # Engines start as soon as each machine finishes its (skewed) boot —
    # the §3.2 situation: the early node negotiates against silence.
    pair_holder: Dict[str, Any] = {}

    def on_boot(system: NTSystem) -> None:
        if "pair" not in pair_holder:
            if all(s.is_up for s in systems.values()):
                pass  # both up simultaneously is handled below anyway
        # Engines are installed per-node as that node comes up.

    # Build the pair lazily: install each node's engine at its boot time.
    # OfttPair wants both systems up, so replicate its wiring manually.
    from repro.com.runtime import ComRuntime
    from repro.core.appdriver import NodeContext
    from repro.core.engine import OfttEngine
    from repro.msq.manager import QueueManager

    engines: Dict[str, OfttEngine] = {}

    def install(system: NTSystem) -> None:
        name = system.node.name
        peer = "beta" if name == "alpha" else "alpha"
        context = NodeContext(
            system=system,
            runtime=ComRuntime(system, network),
            qmgr=QueueManager(kernel, network, system.node),
            config=config,
            trace=trace,
        )
        engine = OfttEngine(
            context=context,
            peer_node=peer,
            application=SyntheticStateApp(cold_kb=1, mode="selective"),
        )
        engine.application.install(context)
        engines[name] = engine
        engine.start()

    for system in systems.values():
        system.on_boot.append(install)
        system.boot()

    kernel.run(until=60_000.0)
    roles = {name: engine.role for name, engine in engines.items()}
    if any(role is Role.SHUTDOWN for role in roles.values()):
        return "shutdown"
    if sorted(role.value for role in roles.values()) == ["backup", "primary"]:
        return "stable"
    return "other:" + ",".join(sorted(role.value for role in roles.values()))


# ---------------------------------------------------------------------------
# X4 — diverter vs naive sender
# ---------------------------------------------------------------------------

def exp_diverter(
    seeds: Optional[List[int]] = None,
    warmup: float = 15_000.0,
    run_after: float = 20_000.0,
    mean_idle: float = 800.0,
    mean_call: float = 600.0,
) -> List[Dict[str, Any]]:
    """X4: events lost across a switchover, with and without the diverter.

    The diverter run uses the full MSMQ store-and-forward + redirect
    machinery.  The naive run sends raw datagrams straight at the node it
    last believed was primary — what an application without the Message
    Diverter would do — and only re-learns the primary when the engines'
    role-change notice arrives.  A busy telephone system (short idle and
    call times) keeps events flowing through the switchover window.
    """
    seeds = seeds if seeds is not None else [0, 1, 2, 3, 4]
    rows: List[Dict[str, Any]] = []
    for variant in ("diverter", "naive"):
        generated = processed = duplicates = 0
        for seed in seeds:
            demo = build_demo(seed=seed, mean_idle=mean_idle, mean_call=mean_call)
            if variant == "naive":
                _make_naive_sender(demo)
            demo.start()
            demo.run_for(warmup)
            primary = demo.pair.primary_node()
            demo.systems[primary].power_off()
            demo.run_for(run_after)
            app = demo.primary_app()
            generated += demo.history.event_count
            processed += app.events_processed() if app else 0
            duplicates += app.process.address_space.read("duplicates_dropped") if app else 0
        rows.append(
            {
                "variant": variant,
                "runs": len(seeds),
                "events_generated": generated,
                "events_processed": processed,
                "events_lost": generated - processed,
                "loss_rate": (generated - processed) / generated if generated else 0.0,
                "duplicates_dropped": duplicates,
            }
        )
    return rows


def _make_naive_sender(demo: DemoScenario) -> None:
    """Replace the diverter path with fire-and-forget datagrams."""
    from repro.core.diverter import inbox_queue_name

    demo.telephone.listeners.remove(demo.forward_listener)
    state = {"primary": None}
    demo.diverter_client.on_primary_change(lambda node: state.update(primary=node))
    queue_name = inbox_queue_name("calltrack")

    def naive_send(event) -> None:
        target = state["primary"]
        if target is None:
            return  # dropped: no believed primary
        # One unreliable datagram straight into the node-local queue port;
        # anything in flight to a dead node is simply gone.
        demo.test_qmgr.network.send(
            demo.test_qmgr.node.name,
            target,
            "msq.transport",
            {
                "kind": "deliver",
                "queue": queue_name,
                "message": {
                    "message_id": f"naive-{event.sequence}",
                    "sender": demo.test_qmgr.node.name,
                    "body": event.as_wire(),
                    "persistent": False,
                    "sent_at": demo.kernel.now,
                    "label": event.kind,
                },
            },
        )

    demo.telephone.add_listener(naive_send)


# ---------------------------------------------------------------------------
# X5 — recovery rules
# ---------------------------------------------------------------------------

def exp_recovery_rules(seed: int = 0, warmup: float = 15_000.0) -> List[Dict[str, Any]]:
    """X5: local restart vs failover for transient application faults."""
    rows: List[Dict[str, Any]] = []
    for rule_name, rule in (
        ("local-restart(2)", RecoveryRule(max_local_restarts=2, restart_delay=100.0)),
        ("always-failover", RecoveryRule.always_failover()),
    ):
        config = OfttConfig().with_rule("synthetic", rule)
        scenario = _pair_env(seed, config, lambda: SyntheticStateApp(cold_kb=8, mode="selective"))
        scenario.pair.start()
        scenario.pair.settle()
        scenario.run_for(warmup)
        primary_before = scenario.pair.primary_node()
        fault_time = scenario.kernel.now
        campaign = Campaign(scenario.kernel, scenario, settle_timeout=20_000.0)
        record = campaign.run_fault(TransientAppCrash(primary_before, "synthetic"))
        rows.append(
            {
                "rule": rule_name,
                "recovered": record.recovered,
                "recovery_ms": record.recovery_latency,
                "switched_over": record.switched_over,
                "local_restarts": scenario.pair.engines[primary_before].local_restart_count,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# X6 — DCOM failure behaviour
# ---------------------------------------------------------------------------

def exp_dcom(seed: int = 0) -> Dict[str, Any]:
    """X6: time for a client to learn its server died, three ways.

    1. Raw DCOM call against a dead *node*: silence until the RPC timeout.
    2. Raw DCOM call against a dead *process* (node alive): fast
       RPC_E_DISCONNECTED.
    3. OFTT heartbeat detection of the same node death: the engine knows
       within its (much shorter) heartbeat timeout.
    """
    from repro.com.interfaces import declare_interface
    from repro.com.object import ComObject
    from repro.com.runtime import ComRuntime

    IPING = declare_interface("IPing", ("Ping",))

    class Ping(ComObject):
        IMPLEMENTS = (IPING,)

        def Ping(self) -> str:
            return "pong"

    config = OfttConfig()
    scenario = _pair_env(seed, config, lambda: SyntheticStateApp(cold_kb=1, mode="selective"))
    scenario.pair.start()
    scenario.pair.settle()
    scenario.run_for(5_000.0)
    primary = scenario.pair.primary_node()
    backup = scenario.pair.backup_node()
    primary_ctx = scenario.pair.contexts[primary]
    backup_ctx = scenario.pair.contexts[backup]

    # Export a ping server on the primary, tied to a host process.
    host = primary_ctx.system.create_process("ping-host")
    host.create_thread("svc", dynamic=False)
    host.start()
    ping_ref = primary_ctx.runtime.export(Ping(), label="ping", process=host)
    proxy = backup_ctx.runtime.proxy_for(ping_ref)

    results: Dict[str, Any] = {}

    # Case 2 first (process death, node alive): kill the host process.
    start = scenario.kernel.now
    host.kill()
    outcome = {}

    def call_dead_process():
        result = yield proxy.Ping()
        outcome["process"] = (scenario.kernel.now - start, result)

    scenario.kernel.spawn(call_dead_process())
    scenario.run_for(5_000.0)
    elapsed, rpc_result = outcome["process"]
    results["dead_process_latency_ms"] = elapsed
    results["dead_process_error"] = rpc_result.detail or hex(rpc_result.hresult)

    # Case 1 + 3: kill the node; time the raw RPC and the OFTT detection.
    fault_time = scenario.kernel.now
    scenario.systems[primary].power_off()
    outcome2 = {}

    def call_dead_node():
        result = yield proxy.Ping()
        outcome2["node"] = (scenario.kernel.now - fault_time, result)

    scenario.kernel.spawn(call_dead_node())
    scenario.run_for(10_000.0)
    elapsed2, rpc_result2 = outcome2["node"]
    timing = failover_timing(scenario.trace, fault_time, backup)
    results["dead_node_rpc_latency_ms"] = elapsed2
    results["dead_node_rpc_error"] = rpc_result2.detail or hex(rpc_result2.hresult)
    results["oftt_detection_latency_ms"] = timing.detection_latency
    results["oftt_failover_latency_ms"] = timing.failover_latency
    results["rpc_timeout_config_ms"] = primary_ctx.runtime.exporter.rpc_timeout
    results["heartbeat_timeout_config_ms"] = config.peer_heartbeat_timeout
    return results


# ---------------------------------------------------------------------------
# X7 — API transparency levels
# ---------------------------------------------------------------------------

def exp_api_levels(seed: int = 0, warmup: float = 30_000.0) -> List[Dict[str, Any]]:
    """X7: integration level vs checkpoint bytes and failover staleness.

    Levels: (1) init-only full periodic checkpoints, (2) +OFTTSelSave
    selective, (3) selective + event-based OFTTSave on every completed
    call (the Call Track configuration).
    """
    rows: List[Dict[str, Any]] = []
    variants = [
        ("L1 init-only", {"save_on_end": False, "selective": False}),
        ("L2 selective", {"save_on_end": False, "selective": True}),
        ("L3 event-based", {"save_on_end": True, "selective": True}),
    ]
    for label, options in variants:
        demo = build_demo(seed=seed, save_on_end=options["save_on_end"])
        if not options["selective"]:
            # Undo the app's OFTTSelSave: monkey-patch via clear at launch.
            _force_full_checkpoints(demo)
        demo.start()
        demo.run_for(warmup)
        primary = demo.pair.primary_node()
        engine = demo.pair.engines[primary]
        checkpoints = engine.local_store.all_for("calltrack")
        sizes = [cp.size_bytes() for cp in checkpoints]
        app = demo.primary_app()
        processed_before = app.events_processed()
        demo.systems[primary].power_off()
        demo.run_for(15_000.0)
        app_after = demo.primary_app()
        generated = demo.history.event_count
        rows.append(
            {
                "level": label,
                "checkpoints_taken": app.api.ftim.checkpoints_taken,
                "mean_checkpoint_bytes": sum(sizes) / len(sizes) if sizes else 0,
                "events_generated": generated,
                "events_after_failover": app_after.events_processed() if app_after else 0,
                "events_lost": generated - (app_after.events_processed() if app_after else 0),
            }
        )
    return rows


def _force_full_checkpoints(demo: DemoScenario) -> None:
    """Make every CallTrack copy skip its OFTTSelSave designation."""
    for node in DEMO_NODES:
        app = demo.pair.apps[node]
        original_launch = app.launch

        def launch(image, _app=app, _orig=original_launch):
            process = _orig(image)
            _app.api.ftim.clear_selection()
            return process

        app.launch = launch


# ---------------------------------------------------------------------------
# Ablations — design choices DESIGN.md calls out
# ---------------------------------------------------------------------------

def _pair_env_dual_lan(seed: int, config: OfttConfig, app_factory, lans: int) -> DemoScenario:
    """Two-node pair attached to *lans* redundant Ethernet segments."""
    scenario = object.__new__(DemoScenario)
    _BaseInit(scenario, seed)
    if lans > 1:
        for index in range(1, lans):
            scenario.network.add_link(f"lan{index}", latency=0.5, jitter=0.1)
            scenario.lans.append(f"lan{index}")
    for name in ("alpha", "beta"):
        scenario._add_machine(name).boot_immediately()
    scenario.config = config
    scenario.pair = OfttPair(
        network=scenario.network,
        systems={name: scenario.systems[name] for name in ("alpha", "beta")},
        config=config,
        app_factory=app_factory,
        unit="bench",
        trace=scenario.trace,
    )
    return scenario


def exp_ablation_dual_lan(seed: int = 0, warmup: float = 5_000.0, observe: float = 10_000.0) -> List[Dict[str, Any]]:
    """Dual vs single Ethernet (§2.1): NIC failure on the pair's link.

    With a redundant segment, heartbeats reroute and nothing happens.
    With a single segment, both sides lose the peer: the backup promotes
    while the primary keeps running — a split brain that persists until
    the link heals and the incarnation rule demotes one side.
    """
    rows: List[Dict[str, Any]] = []
    for lans in (1, 2):
        scenario = _pair_env_dual_lan(
            seed, OfttConfig(), lambda: SyntheticStateApp(cold_kb=2, mode="selective"), lans
        )
        scenario.pair.start()
        scenario.pair.settle()
        scenario.run_for(warmup)
        primary = scenario.pair.primary_node()
        # Cut the primary's NIC on lan0 only.
        scenario.network.nodes[primary].nic_down("lan0")
        dual_primary_window = 0.0
        step = 50.0
        elapsed = 0.0
        while elapsed < observe:
            scenario.run_for(step)
            elapsed += step
            roles = [
                scenario.pair.engines[name].role.value
                for name in scenario.pair.node_names
                if scenario.pair.engines[name].alive
            ]
            if roles.count("primary") > 1:
                dual_primary_window += step
        # Heal and let the pair resolve.
        scenario.network.nodes[primary].nic_up("lan0")
        scenario.run_for(10_000.0)
        resolved = scenario.pair.is_stable()
        rows.append(
            {
                "ethernet_segments": lans,
                "false_failover": scenario.pair.engines[
                    [n for n in scenario.pair.node_names if n != primary][0]
                ].switchover_count > 0
                or scenario.pair.primary_node() != primary
                if lans == 2
                else None,
                "dual_primary_window_ms": dual_primary_window,
                "resolved_after_heal": resolved,
            }
        )
    return rows


def exp_ablation_heartbeat_loss(
    seed: int = 0,
    loss_rates: Optional[List[float]] = None,
    timeouts: Optional[List[float]] = None,
    observe: float = 60_000.0,
) -> List[Dict[str, Any]]:
    """Heartbeat timeout vs false positives on a lossy single link.

    No fault is ever injected: every takeover observed is a false
    positive caused by heartbeat loss.  Aggressive timeouts on lossy
    links destabilise the pair; generous ones ride the loss out.
    """
    loss_rates = loss_rates if loss_rates is not None else [0.05, 0.2]
    timeouts = timeouts if timeouts is not None else [300.0, 1_000.0, 3_000.0]
    rows: List[Dict[str, Any]] = []
    for loss in loss_rates:
        for timeout in timeouts:
            config = replace_config(
                OfttConfig(),
                peer_heartbeat_timeout=timeout,
                peer_heartbeat_period=100.0,
            )
            scenario = _pair_env(seed, config, lambda: SyntheticStateApp(cold_kb=1, mode="selective"))
            scenario.pair.start()
            scenario.pair.settle()
            scenario.network.links["lan0"].loss = loss
            scenario.run_for(observe)
            false_takeovers = scenario.trace.count(category="engine", event="takeover")
            dual_resolutions = scenario.trace.count(category="role", event="dual-primary-demote")
            rows.append(
                {
                    "loss": loss,
                    "timeout_ms": timeout,
                    "false_takeovers": false_takeovers,
                    "dual_primary_resolutions": dual_resolutions,
                    "stable_at_end": scenario.pair.is_stable(),
                }
            )
    return rows


def exp_ablation_checkpoint_period(
    seed: int = 0,
    periods: Optional[List[float]] = None,
    run_time: float = 20_000.0,
) -> List[Dict[str, Any]]:
    """Checkpoint period vs staleness at failover vs checkpoint traffic.

    The tradeoff `OFTTSave` exists to escape: long periods mean little
    traffic but more work re-lost at failover; short periods invert it.
    """
    periods = periods if periods is not None else [250.0, 1_000.0, 4_000.0]
    rows: List[Dict[str, Any]] = []
    for period in periods:
        scenario = _pair_env(
            seed,
            OfttConfig(),
            lambda p=period: SyntheticStateApp(cold_kb=4, mode="selective", tick_period=50.0, checkpoint_period=p),
        )
        scenario.pair.start()
        scenario.pair.settle()
        scenario.run_for(run_time)
        primary = scenario.pair.primary_node()
        app = scenario.pair.apps[primary]
        engine = scenario.pair.engines[primary]
        ticks_before = app.ticks()
        checkpoints = app.api.ftim.checkpoints_taken
        bytes_sent = sum(engine.checkpoint_sizes)
        scenario.systems[primary].power_off()
        scenario.run_for(5_000.0)
        survivor = scenario.pair.primary_node()
        restored = scenario.pair.apps[survivor].process.address_space.read("ticks") if survivor else 0
        # Subtract progress made after the failover (ticks advance ~1/50ms).
        rows.append(
            {
                "checkpoint_period_ms": period,
                "checkpoints_taken": checkpoints,
                "bytes_shipped": bytes_sent,
                "ticks_at_crash": ticks_before,
                "max_staleness_ticks": int(period / 50.0) + 1,
                "recovered": survivor is not None,
            }
        )
    return rows


def exp_scada_blackout(seed: int = 0, warmup: float = 20_000.0, after: float = 30_000.0) -> Dict[str, Any]:
    """Monitoring blackout: the operator-facing cost of a station failover.

    In the Figure 1(a) configuration, measures the longest stretch during
    which *no* running monitoring copy applied any OPC update, across a
    primary power-off.  The gap decomposes into failure detection + app
    relaunch + DCOM reconnect + resubscription + first batch — the
    end-to-end number an operator staring at the screen experiences.
    """
    scenario = build_remote_monitoring(seed=seed)
    scenario.start()

    samples: List[Any] = []  # (time, cumulative-updates-ever)
    cumulative = {"count": 0, "last_seen": {}}

    def sample() -> None:
        for node, app in scenario.pair.apps.items():
            if app.process is None or not app.process.alive:
                continue
            seen = app.updates_seen()
            last = cumulative["last_seen"].get((node, app.launch_count), 0)
            if seen > last:
                cumulative["count"] += seen - last
            cumulative["last_seen"][(node, app.launch_count)] = seen
        samples.append((scenario.kernel.now, cumulative["count"]))

    step = 10.0
    for _ in range(int(warmup / step)):
        scenario.run_for(step)
        sample()
    primary = scenario.pair.primary_node()
    fault_time = scenario.kernel.now
    scenario.systems[primary].power_off()
    for _ in range(int(after / step)):
        scenario.run_for(step)
        sample()

    # Longest stretch without progress.
    gaps: List[float] = []
    last_progress_time = samples[0][0]
    last_count = samples[0][1]
    for time, count in samples[1:]:
        if count > last_count:
            gaps.append(time - last_progress_time)
            last_progress_time = time
            last_count = count
    steady_gaps = [gap for gap in gaps if gap > 0.0]
    timing = failover_timing(scenario.trace, fault_time, scenario.pair.primary_node())
    return {
        "updates_total": samples[-1][1],
        "median_progress_gap_ms": round(summarize(steady_gaps)["p50"], 1) if steady_gaps else None,
        "blackout_ms": round(max(gaps), 1) if gaps else None,
        "failover_latency_ms": timing.failover_latency,
        "resumed": samples[-1][1] > 0 and scenario.pair.is_stable(),
    }
