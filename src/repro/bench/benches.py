"""The bench catalogue: micro sim hot paths, macro end-to-end workloads.

Every bench returns one dict with three parts::

    {"name": ..., "work": {...deterministic...}, "measured": {...timed...}}

``work`` is a pure function of the bench parameters (iteration counts,
event totals, checks) — the byte-stable half of the ``repro.bench/v1``
report.  ``measured`` holds wall seconds and rates from this run.

This module is the one sanctioned home of wall-clock reads in ``src``
(benchmarks exist to read the host clock); everything it *times* is
still fully deterministic sim code.
"""
# oftt-lint: file-ok[wall-clock] -- benchmarks time the host by definition.

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chaos.cli import campaign
from repro.chaos.report import render_json as chaos_render_json
from repro.apps.synthetic import SyntheticStateApp
from repro.harness.scenario import build_pair_env
from repro.perf.executor import warm_pool
from repro.replay.runner import checkpoint_roundtrip
from repro.replay.subjects import run_subject
from repro.simnet.kernel import SimKernel
from repro.simnet.trace import TraceLog

#: (seeds, schedules) per profile for the macro campaign bench.
CAMPAIGN_SHAPE = {"quick": (4, 5), "full": (10, 10)}
PROFILES = tuple(CAMPAIGN_SHAPE)

#: Checkpoint roundtrips per profile.  Sized so the full-profile sample
#: is ~0.5s of wall clock: the previous 20-roundtrip sample finished in
#: ~5ms, where one scheduler hiccup swamps any real change and the diff
#: threshold gates on noise.
ROUNDTRIP_COUNT = {"quick": 250, "full": 2000}

_WARMUP = 15_000.0  #: sim ms before the checkpoint bench starts capturing


def _timed(fn: Callable[[], Any]) -> tuple:
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _rate(count: int, seconds: float) -> float:
    return round(count / seconds, 1) if seconds > 0 else 0.0


def bench_kernel_events(n: int) -> Dict[str, Any]:
    """Schedule *n* no-op callbacks (cancelling every third) and drain.

    The cancel mix exercises both the lazy-cancel skip in ``run()`` and
    the heap compaction path; ``pending`` must hit zero either way.
    """
    kernel = SimKernel()
    fired = [0]

    def tick() -> None:
        fired[0] += 1

    def drive() -> None:
        calls = [kernel.schedule(float(i % 997), tick) for i in range(n)]
        for call in calls[::3]:
            kernel.cancel(call)
        kernel.run()

    # Untimed warm-up on a throwaway kernel: pre-heats the allocator and
    # bytecode caches so the single timed pass measures steady state
    # rather than first-touch effects.
    warm = SimKernel()
    for i in range(min(n // 10, 20_000)):
        warm.schedule(float(i % 97), int)
    warm.run()

    _, seconds = _timed(drive)
    cancelled = len(range(0, n, 3))
    return {
        "name": "kernel-events",
        "work": {
            "scheduled": n,
            "cancelled": cancelled,
            "fired": fired[0],
            "drained": kernel.pending == 0,
        },
        "measured": {"wall_s": round(seconds, 4), "events_per_s": _rate(n, seconds)},
    }


def bench_trace_emits(n: int) -> Dict[str, Any]:
    """Emit *n* records (no subscribers), then fingerprint cold and warm.

    Times the ``emit`` fast path plus the per-record fingerprint cache:
    the second full fingerprint should be near-free.
    """
    trace = TraceLog()

    def drive() -> TraceLog:
        for i in range(n):
            trace.emit("bench", f"component-{i % 7}", f"event-{i % 13}", index=i)
        return trace

    _, emit_seconds = _timed(drive)
    cold, cold_seconds = _timed(trace.fingerprint)
    warm, warm_seconds = _timed(trace.fingerprint)
    return {
        "name": "trace-emits",
        "work": {
            "emitted": n,
            "selected": len(trace.select(category="bench", component="component-0")),
            "fingerprint_stable": cold == warm,
        },
        "measured": {
            "wall_s": round(emit_seconds, 4),
            "emits_per_s": _rate(n, emit_seconds),
            "fingerprint_cold_s": round(cold_seconds, 4),
            "fingerprint_warm_s": round(warm_seconds, 4),
        },
    }


def bench_checkpoint_roundtrips(n: int) -> Dict[str, Any]:
    """Run *n* capture -> restore -> capture cycles on the pair scenario."""
    scenario = build_pair_env(seed=0, app_factory=lambda: SyntheticStateApp(cold_kb=8, mode="full"))
    scenario.start()
    scenario.run_for(_WARMUP)

    def drive() -> List[bool]:
        return [
            checkpoint_roundtrip(scenario, scenario.primary_app(), subject="bench", seed=0).ok
            for _ in range(n)
        ]

    oks, seconds = _timed(drive)
    return {
        "name": "checkpoint-roundtrips",
        "work": {"roundtrips": n, "ok": sum(oks)},
        "measured": {"wall_s": round(seconds, 4), "roundtrips_per_s": _rate(n, seconds)},
    }


def bench_chaos_campaign(profile: str, jobs: int) -> Dict[str, Any]:
    """Time the campaign serial and at *jobs* workers; require byte equality.

    This is the acceptance bench for the parallel executor: the speedup
    is whatever this host's cores deliver, but the reports must match
    byte-for-byte or the bench itself reports ``byte_identical: false``.
    """
    seeds, schedules = CAMPAIGN_SHAPE[profile]
    serial, serial_a = _timed(lambda: campaign(seeds, schedules, 0, jobs=1))
    _, serial_b = _timed(lambda: campaign(seeds, schedules, 0, jobs=1))
    serial_seconds = min(serial_a, serial_b)
    # Spawn-overhead attribution: worker startup is a one-time cost of
    # the *process*, not of any particular campaign (the persistent pool
    # amortizes it across every later fan-out), so it is measured and
    # reported separately instead of being silently folded into — or
    # silently excluded from — the parallel wall time.
    _, spawn_seconds = _timed(lambda: warm_pool(jobs))
    # The first dispatch additionally pays each worker's module imports
    # (the task function is pickled by reference, so workers import the
    # repro package on first use).  With a persistent pool both costs
    # are paid once per process, so they are attributed separately and
    # the steady-state parallel wall is measured on a later campaign.
    # Both halves record best-of-two: a one-shot wall time on a busy
    # host gates the diff on scheduler noise, not on the code.
    first, first_seconds = _timed(lambda: campaign(seeds, schedules, 0, jobs=jobs))
    parallel, second_seconds = _timed(lambda: campaign(seeds, schedules, 0, jobs=jobs))
    parallel_seconds = min(first_seconds, second_seconds)
    serial_json = chaos_render_json(serial)
    return {
        "name": "chaos-campaign",
        "work": {
            "runs": seeds * schedules,
            "jobs": jobs,
            "failures": sum(1 for run in serial if not run.passed),
            "byte_identical": serial_json == chaos_render_json(first)
            and serial_json == chaos_render_json(parallel),
        },
        "measured": {
            "serial_wall_s": round(serial_seconds, 4),
            "parallel_wall_s": round(parallel_seconds, 4),
            # Neutral keys on purpose (no ``_s`` suffix): attribution
            # info for the one-time spawn and first-dispatch worker
            # imports, in seconds — interpreter startup variance should
            # not gate the diff.
            "pool_spawn_overhead": round(spawn_seconds, 4),
            "worker_import_overhead": round(max(first_seconds - second_seconds, 0.0), 4),
            "speedup": round(serial_seconds / parallel_seconds, 2) if parallel_seconds > 0 else 0.0,
        },
    }


def bench_replay_demo_campaign() -> Dict[str, Any]:
    """Time the heaviest replay subject: the §4 demo campaign, run twice."""
    result, seconds = _timed(lambda: run_subject("demo-campaign", seed=0))
    return {
        "name": "replay-demo-campaign",
        "work": {"ok": result.ok, "events": result.events},
        "measured": {"wall_s": round(seconds, 4)},
    }


def run_benches(
    profile: str = "quick", jobs: int = 2, only: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Run the bench catalogue for *profile*; bench order is fixed.

    *only* restricts the run to a single bench by name (hot-path
    iteration should not rerun the macro campaign); unknown names raise
    with the catalogue listed.
    """
    if profile not in CAMPAIGN_SHAPE:
        raise ValueError(f"unknown profile {profile!r}; expected one of {PROFILES}")
    micro_n = 50_000 if profile == "quick" else 200_000
    catalogue: List[Tuple[str, Callable[[], Dict[str, Any]]]] = [
        ("kernel-events", lambda: bench_kernel_events(micro_n)),
        ("trace-emits", lambda: bench_trace_emits(micro_n)),
        ("checkpoint-roundtrips", lambda: bench_checkpoint_roundtrips(ROUNDTRIP_COUNT[profile])),
        ("chaos-campaign", lambda: bench_chaos_campaign(profile, jobs)),
        ("replay-demo-campaign", bench_replay_demo_campaign),
    ]
    if only is not None:
        names = [name for name, _ in catalogue]
        if only not in names:
            raise ValueError(f"unknown bench {only!r}; expected one of {names}")
        catalogue = [(name, fn) for name, fn in catalogue if name == only]
    return [fn() for _, fn in catalogue]
