"""Unit tests for the fieldbus, PLC scan loop, and the PLC→OPC bridge."""

import pytest

from repro.com.runtime import ComRuntime
from repro.devices.device import Actuator, Sensor
from repro.devices.fieldbus import Fieldbus
from repro.devices.plc import PLC, PlcOpcBridge
from repro.devices.signals import Constant, Step
from repro.opc.server import OpcServer
from repro.opc.types import Quality

from tests.conftest import make_world


def make_plant(seed=0):
    world = make_world(seed)
    bus = Fieldbus("bus0")
    bus.attach(Sensor("temp", Step(before=50.0, after=90.0, at_time=1_000.0)))
    bus.attach(Actuator("pump"))
    plc = PLC(world.kernel, "plc1", bus, world.rngs.stream("plc"), scan_period=50.0)
    plc.map_output("pump")
    return world, bus, plc


def test_fieldbus_attach_and_lookup():
    _world, bus, _plc = make_plant()
    assert [s.name for s in bus.sensors()] == ["temp"]
    assert [a.name for a in bus.actuators()] == ["pump"]
    with pytest.raises(KeyError):
        bus.device("ghost")
    with pytest.raises(ValueError):
        bus.attach(Sensor("temp", Constant(0.0)))


def test_fieldbus_down_blocks_io():
    world, bus, _plc = make_plant()
    bus.fail()
    with pytest.raises(IOError):
        bus.read_sensor("temp", 0.0, world.rngs.stream("x"))
    with pytest.raises(IOError):
        bus.write_actuator("pump", 1.0)
    bus.repair()
    assert bus.read_sensor("temp", 0.0, world.rngs.stream("x")) == 50.0


def test_plc_scan_reads_inputs_runs_logic_writes_outputs():
    world, bus, plc = make_plant()

    def interlock(inputs, outputs, _time):
        outputs["pump"] = 1.0 if inputs.get("temp", 0.0) > 80.0 else 0.0

    plc.add_logic(interlock)
    plc.start()
    world.run(500.0)
    assert plc.inputs["temp"] == 50.0
    assert bus.device("pump").commanded == 0.0
    world.run(1_500.0)
    assert plc.inputs["temp"] == 90.0
    assert bus.device("pump").commanded == 1.0
    assert plc.scan_count > 20


def test_plc_marks_bad_quality_on_sensor_failure():
    world, bus, plc = make_plant()
    plc.start()
    world.run(200.0)
    assert plc.input_quality["temp"] is Quality.GOOD
    bus.device("temp").fail()
    world.run(400.0)
    assert plc.input_quality["temp"] is Quality.BAD_DEVICE_FAILURE
    # Last good value is retained in the image.
    assert plc.inputs["temp"] == 50.0


def test_plc_stop_halts_scanning():
    world, _bus, plc = make_plant()
    plc.start()
    world.run(300.0)
    count = plc.scan_count
    plc.stop()
    world.run(1_000.0)
    assert plc.scan_count == count


def test_bridge_publishes_items_with_quality():
    world, bus, plc = make_plant()
    system = world.add_machine("host")
    runtime = ComRuntime(system, world.network)
    server = OpcServer(runtime, "OPC.P.1")
    bridge = PlcOpcBridge(world.kernel, plc, server, poll_period=100.0)
    plc.start()
    bridge.start()
    world.run(500.0)
    assert server.namespace.read("plc1.temp").value == 50.0
    assert server.namespace.read("plc1.pump").value == 0.0
    bus.device("temp").fail()
    world.run(1_000.0)
    assert server.namespace.read("plc1.temp").quality is Quality.BAD_DEVICE_FAILURE


def test_bridge_stop():
    world, _bus, plc = make_plant()
    system = world.add_machine("host")
    runtime = ComRuntime(system, world.network)
    server = OpcServer(runtime, "OPC.P.1")
    bridge = PlcOpcBridge(world.kernel, plc, server, poll_period=100.0)
    plc.start()
    bridge.start()
    world.run(300.0)
    polls = bridge.poll_count
    bridge.stop()
    world.run(1_000.0)
    assert bridge.poll_count == polls
