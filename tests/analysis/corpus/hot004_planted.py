"""Planted HOT004: per-event hashing with no memo guard."""

import hashlib


class Hot:
    def run(self, payload):
        return hashlib.sha256(payload).hexdigest()  # expect: HOT004
