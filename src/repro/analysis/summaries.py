"""Per-function effect summaries and their bottom-up propagation.

A summary is the whole-program currency of the effects pass: for one
function it records, as dictionaries keyed by name,

* ``self_reads`` / ``self_writes`` / ``self_mutates`` / ``self_iterates``
  — accesses to ``self.*`` attributes (methods only),
* ``global_writes`` — stores to ``global``-declared names and mutator
  calls on module-level bindings,
* ``ambient`` — reads of host state the determinism contract forbids
  (wall clock, global RNG, OS entropy, environment),
* ``param_mutations`` — in-place mutation of the function's own
  parameters.

Each value is the *call chain* through which the effect was reached: the
empty tuple for a direct effect, otherwise the function keys traversed,
outermost first.  :func:`propagate` folds callee summaries into callers
over the call graph with k-bounded inlining (an effect travels at most
``max_k`` call hops, default 2) and cycle-safe fixpoint iteration — the
chain-length bound makes the lattice finite, so iteration terminates on
recursive cycles without special casing.

Propagation is receiver-aware: ``self.*`` effects only flow through
``self.method()`` edges (a method mutating a *locally constructed*
object is private to the caller), while global writes and ambient reads
flow through every edge.  A callee that mutates its parameter projects
that mutation back onto whatever the caller passed — another parameter
(keeping :data:`EffectSummary.param_mutations` transitive) or a
``self.attr`` (surfacing as a container mutation on the caller).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, Edge, FunctionInfo, positional_params
from repro.analysis.determinism import (
    _ENTROPY_CALLS,
    _RANDOM_DRAWS,
    _WALL_CLOCK_CALLS,
)
from repro.analysis.walker import SourceFile, resolve_call_name

#: A propagation path: keys of the callees traversed, outermost first.
#: Empty for effects the function performs in its own body.
Chain = Tuple[str, ...]

#: Container methods treated as in-place mutation of the receiver.
MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "clear", "add", "discard",
    "update", "setdefault", "popitem", "appendleft", "popleft", "sort", "reverse",
}

#: Ambient host reads (resolved dotted callee names) beyond the global
#: RNG, which is matched structurally below.
AMBIENT_CALLS = (
    set(_WALL_CLOCK_CALLS)
    | set(_ENTROPY_CALLS)
    | {"os.getenv", "os.environ.get", "os.urandom", "os.cpu_count", "secrets.token_bytes",
       "secrets.token_hex", "secrets.randbelow", "uuid.uuid1", "uuid.uuid4"}
)

#: Ambient attribute reads (no call involved).
AMBIENT_ATTRS = {"os.environ", "sys.argv"}


def self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when *node* is exactly ``self.attr``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


@dataclass
class EffectSummary:
    """Effect sets of one function; values are representative chains."""

    self_reads: Dict[str, Chain] = field(default_factory=dict)
    self_writes: Dict[str, Chain] = field(default_factory=dict)
    self_mutates: Dict[str, Chain] = field(default_factory=dict)
    self_iterates: Dict[str, Chain] = field(default_factory=dict)
    global_writes: Dict[str, Chain] = field(default_factory=dict)
    ambient: Dict[str, Chain] = field(default_factory=dict)
    param_mutations: Dict[str, Chain] = field(default_factory=dict)

    def copy(self) -> "EffectSummary":
        return EffectSummary(
            dict(self.self_reads), dict(self.self_writes), dict(self.self_mutates),
            dict(self.self_iterates), dict(self.global_writes), dict(self.ambient),
            dict(self.param_mutations),
        )


def module_global_names(tree: ast.Module) -> Set[str]:
    """Names bound by top-level assignments (the mutable module state)."""
    names: Set[str] = set()
    for node in tree.body:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.update(n.id for n in target.elts if isinstance(n, ast.Name))
    return names


def _bound_names(func: ast.FunctionDef) -> Set[str]:
    """Names the function binds locally (params plus any Store target)."""
    bound: Set[str] = set()
    args = func.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        bound.add(arg.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)) and node is not func:
            bound.add(node.name)
    return bound


def _param_names(func: ast.FunctionDef, *, is_method: bool) -> Set[str]:
    params = set(positional_params(func, drop_self=is_method))
    params.update(arg.arg for arg in func.args.kwonlyargs)
    return params


def _ambient_source(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """The canonical ambient-source name for *node*, if it reads one."""
    callee = resolve_call_name(node, aliases)
    if callee is None:
        return None
    if callee in AMBIENT_CALLS:
        return callee
    if callee.startswith("secrets.") or callee.startswith("numpy.random.") or callee.startswith("np.random."):
        return callee
    head, _, tail = callee.partition(".")
    if aliases.get(head, head) == "random" and tail in _RANDOM_DRAWS:
        return f"random.{tail}"
    if "." not in callee and aliases.get(callee, "") == f"random.{callee}":
        return f"random.{callee}"
    return None


def direct_effects(
    info: FunctionInfo,
    module_globals: Set[str],
    aliases: Dict[str, str],
) -> EffectSummary:
    """The effects *info*'s own body performs (no propagation)."""
    func = info.node
    summary = EffectSummary()
    is_method = info.class_name is not None
    params = _param_names(func, is_method=is_method)
    bound = _bound_names(func)
    declared_global: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    def is_module_global(name: str) -> bool:
        if name in declared_global:
            return True
        return name in module_globals and name not in bound

    for node in ast.walk(func):
        # -- self.* attribute accesses ----------------------------------
        attr = self_attr(node)
        if attr is not None:
            if isinstance(node.ctx, (ast.Store, ast.Del)):  # type: ignore[attr-defined]
                summary.self_writes.setdefault(attr, ())
            else:
                summary.self_reads.setdefault(attr, ())
        if isinstance(node, ast.AugAssign):
            target = self_attr(node.target)
            if target is not None:
                summary.self_writes.setdefault(target, ())
                summary.self_reads.setdefault(target, ())
            if isinstance(node.target, ast.Name) and is_module_global(node.target.id):
                summary.global_writes.setdefault(node.target.id, ())
        # -- plain global stores ----------------------------------------
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            if node.id in declared_global:
                summary.global_writes.setdefault(node.id, ())
        # -- calls: mutators and ambient sources ------------------------
        if isinstance(node, ast.Call):
            source = _ambient_source(node, aliases)
            if source is not None:
                summary.ambient.setdefault(source, ())
            if isinstance(node.func, ast.Attribute) and node.func.attr in MUTATORS:
                _record_mutation(summary, node.func.value, params, is_module_global)
        # -- subscript / attribute stores on params and globals ---------
        if isinstance(node, ast.Subscript) and isinstance(node.ctx, (ast.Store, ast.Del)):
            _record_mutation(summary, node.value, params, is_module_global)
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, (ast.Store, ast.Del)):
            # `self.x = v` is a plain write (handled above); deeper
            # targets (`obj.field = v`, `self.a.b = v`) mutate the root.
            if self_attr(node) is None:
                _record_mutation(summary, node.value, params, is_module_global)
        # -- ambient attribute reads ------------------------------------
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            dotted = _attr_dotted(node)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                resolved = aliases.get(head, head) + (f".{rest}" if rest else "")
                if resolved in AMBIENT_ATTRS:
                    summary.ambient.setdefault(resolved, ())
        # -- iteration over self containers -----------------------------
        if isinstance(node, (ast.For, ast.AsyncFor)):
            owner_attr = _iterated_self_attr(node.iter)
            if owner_attr is not None:
                summary.self_iterates.setdefault(owner_attr, ())
                summary.self_reads.setdefault(owner_attr, ())
        if isinstance(node, ast.comprehension):
            owner_attr = _iterated_self_attr(node.iter)
            if owner_attr is not None:
                summary.self_iterates.setdefault(owner_attr, ())
                summary.self_reads.setdefault(owner_attr, ())
    return summary


def _root_name(node: ast.AST) -> Tuple[Optional[str], Optional[str]]:
    """(root variable, first attribute) of an attribute/name chain.

    ``self.a.b`` -> ("self", "a"); ``items`` -> ("items", None);
    anything not rooted at a plain name -> (None, None).
    """
    attrs: List[str] = []
    while isinstance(node, ast.Attribute):
        attrs.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        return node.id, (attrs[-1] if attrs else None)
    return None, None


def _record_mutation(summary: EffectSummary, owner: ast.AST, params: Set[str], is_module_global) -> None:
    """Attribute in-place mutation rooted at *owner*: classify the root."""
    root, first_attr = _root_name(owner)
    if root is None:
        return
    if root == "self":
        if first_attr is not None:
            summary.self_mutates.setdefault(first_attr, ())
            summary.self_writes.setdefault(first_attr, ())
    elif root in params:
        summary.param_mutations.setdefault(root, ())
    elif is_module_global(root):
        summary.global_writes.setdefault(root, ())


def _attr_dotted(node: ast.Attribute) -> Optional[str]:
    parts: List[str] = []
    current: ast.AST = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _iterated_self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when iterating ``self.attr`` or ``self.attr.items()`` etc."""
    attr = self_attr(node)
    if attr is not None:
        return attr
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in ("items", "keys", "values"):
            return self_attr(node.func.value)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and node.func.id == "sorted":
        if node.args:
            return _iterated_self_attr(node.args[0])
    return None


# -- propagation -----------------------------------------------------------


def _merge_chained(
    dst: Dict[str, Chain], src: Dict[str, Chain], hop: str, caller_key: str, max_k: int
) -> bool:
    """Fold *src* entries into *dst* through one call hop; True if grown."""
    changed = False
    for name in sorted(src):
        chain = (hop,) + src[name]
        if len(chain) > max_k or caller_key in chain:
            continue
        if name not in dst:
            dst[name] = chain
            changed = True
    return changed


def _merge_edge(
    merged: EffectSummary,
    caller: FunctionInfo,
    caller_params: Set[str],
    edge: Edge,
    callee: EffectSummary,
    max_k: int,
) -> bool:
    changed = False
    key = caller.key
    if edge.via_self:
        changed |= _merge_chained(merged.self_reads, callee.self_reads, edge.callee, key, max_k)
        changed |= _merge_chained(merged.self_writes, callee.self_writes, edge.callee, key, max_k)
        changed |= _merge_chained(merged.self_mutates, callee.self_mutates, edge.callee, key, max_k)
        changed |= _merge_chained(merged.self_iterates, callee.self_iterates, edge.callee, key, max_k)
    changed |= _merge_chained(merged.global_writes, callee.global_writes, edge.callee, key, max_k)
    changed |= _merge_chained(merged.ambient, callee.ambient, edge.callee, key, max_k)
    # A callee that mutates its parameter mutates whatever we passed it.
    for callee_param, slot in edge.arg_slots:
        chain_tail = callee.param_mutations.get(callee_param)
        if chain_tail is None:
            continue
        chain = (edge.callee,) + chain_tail
        if len(chain) > max_k or key in chain:
            continue
        kind, name = slot
        if kind == "param" and name in caller_params:
            if name not in merged.param_mutations:
                merged.param_mutations[name] = chain
                changed = True
        elif kind == "self":
            if name not in merged.self_mutates:
                merged.self_mutates[name] = chain
                changed = True
            if name not in merged.self_writes:
                merged.self_writes[name] = chain
                changed = True
    return changed


def propagate(
    graph: CallGraph,
    direct: Dict[str, EffectSummary],
    max_k: int = 2,
) -> Dict[str, EffectSummary]:
    """Fixpoint of callee-into-caller folding, chains bounded by *max_k*.

    Each round extends every caller with its callees' summaries from the
    previous round (Jacobi-style, so the result is independent of
    iteration order); entries whose chain would exceed ``max_k`` hops are
    dropped, which both implements the k-bound and guarantees
    termination on recursive call cycles.
    """
    params_of = {
        key: _param_names(info.node, is_method=info.class_name is not None)
        for key, info in graph.functions.items()
    }
    current = {key: summary.copy() for key, summary in direct.items()}
    for _ in range(max(0, max_k)):
        changed = False
        nxt: Dict[str, EffectSummary] = {}
        for key in sorted(graph.functions):
            merged = current[key].copy()
            info = graph.functions[key]
            for edge in graph.callees(key):
                callee_summary = current.get(edge.callee)
                if callee_summary is not None:
                    changed |= _merge_edge(merged, info, params_of[key], edge, callee_summary, max_k)
            nxt[key] = merged
        current = nxt
        if not changed:
            break
    return current


def compute_summaries(
    files: Sequence[SourceFile],
    graph: CallGraph,
    max_k: int = 2,
) -> Dict[str, EffectSummary]:
    """Direct extraction plus propagation for every function in *graph*."""
    globals_by_module: Dict[str, Set[str]] = {}
    for source_file in files:
        if source_file.tree is not None:
            globals_by_module[source_file.module_name] = module_global_names(source_file.tree)
    direct = {
        key: direct_effects(
            info,
            globals_by_module.get(info.module, set()),
            graph.aliases.get(info.module, {}),
        )
        for key, info in graph.functions.items()
    }
    return propagate(graph, direct, max_k=max_k)
