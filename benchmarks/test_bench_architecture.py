"""Benchmark F2: the Figure 2 software architecture.

Paper artifact: Figure 2, "OFTT Software Architecture" — engine, FTIMs,
Message Diverter and System Monitor wired across the primary/backup pair
with checkpoint and sensor/control data flows.  This harness builds the
architecture and reports live counters proving every flow is active.
"""

from repro.harness.experiments import exp_architecture

from benchmarks.conftest import print_block


def test_bench_architecture(benchmark):
    result = benchmark.pedantic(lambda: exp_architecture(seed=7), rounds=1, iterations=1)
    print_block("F2: Figure 2 architecture — live component counters", result)
    assert result["engine_processes_alive"]
    assert result["ftim_linked"]
    assert result["checkpoints_mirrored"] > 0
    assert result["monitor_sees_primary"]
    assert not result["app_running_on_backup"]
