"""OFTT — OLE Fault Tolerance Technology, reproduced in simulation.

A from-scratch Python reproduction of *"OFTT: A Fault Tolerance
Middleware Toolkit for Process Monitoring and Control Windows NT
Applications"* (Hecht, An, Zhang & He, DSN 2000), including every
substrate the paper's system runs on:

* :mod:`repro.simnet` — deterministic discrete-event kernel + network.
* :mod:`repro.nt` — simulated Windows NT machines, processes, threads,
  memory, Win32-style APIs and IAT interception.
* :mod:`repro.com` — COM object model and DCOM remoting with realistic
  RPC failure semantics.
* :mod:`repro.msq` — MSMQ-style store-and-forward message queues.
* :mod:`repro.opc` — OPC data-access servers, groups and clients.
* :mod:`repro.devices` — PLCs, sensors, fieldbus, and the §4 telephone
  system simulator.
* :mod:`repro.core` — **the OFTT middleware itself**: engine, FTIMs,
  checkpointing, role negotiation, watchdogs, Message Diverter, System
  Monitor, and the ``OFTT*`` API.
* :mod:`repro.apps` — protected applications (Call Track, SCADA).
* :mod:`repro.faults` — scripted fault injection (the §4 demos and more).
* :mod:`repro.harness` — scenario builders and experiment runners for
  every figure/table/demonstration in the paper.

Quick start::

    from repro.core import OfttApi, OfttApplication, OfttConfig, OfttPair

See ``examples/quickstart.py`` for a complete runnable deployment.
"""

from repro._version import __version__

__all__ = ["__version__"]
