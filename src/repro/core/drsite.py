"""The disaster-recovery site for :class:`LogReplayDRStrategy`.

A third, remote node outside the primary/backup pair.  It never runs
the application; it accumulates two durable streams into one journaled
MSMQ queue (``oftt.dr.journal``) and watches the pair's liveness:

* ``ckpt`` records — checkpoints mirrored by the pair's primary
  (:meth:`LogReplayDRStrategy.replicate`), kept in a local
  :class:`~repro.core.checkpoint.CheckpointStore` (incremental deltas
  merge onto the latest image exactly as on the backup);
* ``msg`` records — the sender-side message log: external clients
  mirror every workload message here at send time (the
  ``DiverterClient`` ``mirror`` option), so the log survives the pair
  (the pair-side inbox journal dies with its node).

When *both* pair engines go silent for ``config.dr_activation_timeout``
(no DR heartbeats on ``oftt.dr``, no checkpoint arrivals), the site
activates: it reconstructs the application state as
``last checkpoint image + replay of logged messages the image does not
already contain`` — the recovery rule of message-logging +
checkpointing (arxiv 0911.3092).  Replay applies messages through the
application-provided ``apply_message(state, body) -> bool`` so the
site needs no application process of its own; messages already
reflected in the checkpoint (or out of order) return False and are
skipped.  If a pair heartbeat arrives while active — the pair came
back — the site stands down; split-brain between the DR site and a
serving primary is the chaos suite's ``dr-standdown`` check.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.checkpoint import Checkpoint, CheckpointStore
from repro.core.config import OfttConfig
from repro.msq.manager import QueueManager
from repro.msq.queue import QueueMessage
from repro.nt.system import NTSystem
from repro.simnet.kernel import SimKernel
from repro.simnet.trace import TraceLog

#: The DR site's journal queue (checkpoint mirror + message log).
DR_QUEUE = "oftt.dr.journal"
#: Port the pair engines heartbeat the DR site on.
DR_PORT = "oftt.dr"


class DRSite:
    """Remote-site journal consumer + total-pair-loss recovery engine."""

    def __init__(
        self,
        kernel: SimKernel,
        system: NTSystem,
        qmgr: QueueManager,
        config: OfttConfig,
        trace: TraceLog,
        app_name: str = "synthetic",
        apply_message: Optional[Callable[[Dict[str, Any], Any], bool]] = None,
    ) -> None:
        self.kernel = kernel
        self.system = system
        self.config = config
        self.trace = trace
        self.node_name = system.node.name
        self.app_name = app_name
        self.apply_message = apply_message
        self.store = CheckpointStore(config.checkpoint_history)
        #: Message-log bodies in arrival order (replay input).
        self.message_log: List[Any] = []
        self.checkpoints_rx = 0
        self.messages_rx = 0
        self.last_pair_signal: Optional[float] = None
        self.active = False
        self.activations = 0
        self.activated_at: Optional[float] = None
        self.recovered_image: Optional[Dict[str, Dict[str, Any]]] = None
        self.replayed_count = 0
        self.queue = qmgr.create_queue(DR_QUEUE, journal=True)
        self.queue.subscribe(self._on_record)
        system.node.bind(DR_PORT, self._on_pair_heartbeat)
        # Poll well inside the activation timeout so activation latency
        # is dominated by the timeout itself, not the poll grid.
        self._watch_period = max(config.dr_activation_timeout / 4.0, 250.0)
        self._watch_timer: Optional[int] = self.kernel.schedule(self._watch_period, self._watch)

    def stop(self) -> None:
        """Retire the site: stop the activation watch and journal intake.

        The journal and any reconstructed image stay readable — only the
        live machinery (poll timer, queue subscription) is released.
        """
        if self._watch_timer is not None:
            self.kernel.cancel(self._watch_timer)
            self._watch_timer = None
        self.queue.unsubscribe()

    # -- journal intake ------------------------------------------------------------

    # Same-tick with _watch/_on_pair_heartbeat is benign: journal intake,
    # heartbeats and the watch poll each leave the site in a state that is
    # a pure function of the kernel's deterministic same-tick (seq) order,
    # and reconstruct() runs over whatever the log holds at that instant.
    def _on_record(self, message: QueueMessage) -> None:  # oftt-lint: ok[ip-race-container,race-write-write]
        body = message.body
        kind = body.get("kind") if isinstance(body, dict) else None
        if kind == "ckpt":
            self.checkpoints_rx += 1
            self.store.store(Checkpoint.from_wire(body["data"]))
            # Checkpoints come from the pair's primary: proof of life.
            self.last_pair_signal = self.kernel.now
        elif kind == "msg":
            self.messages_rx += 1
            # The journal IS the recovery state: reconstruct() replays it
            # verbatim, so it must not be pruned here.  Compaction under
            # long-horizon soak is ROADMAP item 5.
            self.message_log.append(body["body"])  # oftt-lint: ok[unbounded-growth]

    def _on_pair_heartbeat(self, _message: Any) -> None:  # oftt-lint: ok[race-write-write,ip-race-write-write]
        self.last_pair_signal = self.kernel.now
        if self.active:
            self._stand_down()

    # -- activation ----------------------------------------------------------------

    def _watch(self) -> None:
        now = self.kernel.now
        if (
            not self.active
            and self.last_pair_signal is not None
            and now - self.last_pair_signal > self.config.dr_activation_timeout
        ):
            self._activate(now - self.last_pair_signal)
        self._watch_timer = self.kernel.schedule(self._watch_period, self._watch)

    def _activate(self, silence: float) -> None:
        self.active = True
        self.activations += 1
        self.activated_at = self.kernel.now
        image, replayed = self.reconstruct()
        self.recovered_image = image
        self.replayed_count = replayed
        self.trace.emit(
            "drsite",
            self.node_name,
            "dr-activated",
            silence=round(silence, 3),
            checkpoint_sequence=self.store.latest_sequence(self.app_name),
            replayed=replayed,
        )

    def _stand_down(self) -> None:
        self.active = False
        self.activated_at = None
        self.trace.emit("drsite", self.node_name, "dr-standdown")

    def reconstruct(self) -> Tuple[Dict[str, Dict[str, Any]], int]:
        """``(image, replayed)``: last checkpoint + message-log replay.

        Starts from a deep copy of the latest mirrored image (never
        mutates the store) and replays every logged message through the
        application's ``apply_message``; the application decides — via
        its own sequencing state inside the image — which messages the
        checkpoint already reflects.
        """
        latest = self.store.latest(self.app_name)
        image: Dict[str, Dict[str, Any]] = copy.deepcopy(latest.image) if latest is not None else {}
        replayed = 0
        if self.apply_message is not None:
            region = image.setdefault("globals", {})
            for body in self.message_log:
                if self.apply_message(region, body):
                    replayed += 1
        return image, replayed

    def __repr__(self) -> str:
        state = "ACTIVE" if self.active else "standby"
        return (
            f"DRSite({self.node_name}, {state}, ckpts={self.checkpoints_rx}, "
            f"msgs={self.messages_rx})"
        )
