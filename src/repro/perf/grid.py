"""Canonical-order parameter grids.

A grid is described as ``{axis_name: [values...]}``.  The point list is
the cartesian product in *canonical order*: axis names sorted, the first
(sorted) axis varying slowest and the last varying fastest, values in
the order given.  Canonical ordering is what lets a sweep fan its points
out over :func:`repro.perf.executor.parallel_map` and still merge into a
byte-stable table.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence


def grid_points(axes: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of *axes* in canonical order.

    >>> grid_points({"b": [1, 2], "a": ["x"]})
    [{'a': 'x', 'b': 1}, {'a': 'x', 'b': 2}]
    """
    points: List[Dict[str, Any]] = [{}]
    for name in sorted(axes):
        values = list(axes[name])
        if not values:
            raise ValueError(f"grid axis {name!r} has no values")
        points = [dict(point, **{name: value}) for point in points for value in values]
    return points
