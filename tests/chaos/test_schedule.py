"""Unit tests for chaos schedule generation and serialization."""

from repro.chaos.schedule import FAULT_BUILDERS, ChaosSchedule, FaultEntry, ScheduleGenerator
from repro.simnet.random import RngStreams


def make_generator(seed=0):
    return ScheduleGenerator(
        nodes=["alpha", "beta"],
        links=["lan0"],
        process="synthetic",
        rng=RngStreams(seed).stream("chaos.schedule"),
    )


def test_generation_is_seed_deterministic():
    first = [make_generator(7).generate() for _ in range(1)][0]
    second = make_generator(7).generate()
    assert first.as_wire() == second.as_wire()


def test_different_seeds_differ():
    schedules_a = [make_generator(0).generate().as_wire() for _ in range(1)]
    schedules_b = [make_generator(1).generate().as_wire() for _ in range(1)]
    assert schedules_a != schedules_b


def test_every_generated_kind_is_buildable():
    generator = make_generator(3)
    for _ in range(20):
        schedule = generator.generate()
        for entry in schedule.entries:
            assert entry.kind in FAULT_BUILDERS
            entry.build()  # must materialize without an environment


def test_horizon_leaves_recovery_tail():
    generator = make_generator(1)
    for _ in range(10):
        schedule = generator.generate()
        last = max(entry.at for entry in schedule.entries)
        assert schedule.horizon - last >= 12_000.0


def test_wire_round_trip():
    schedule = make_generator(5).generate()
    wire = schedule.as_wire()
    assert ChaosSchedule.from_wire(wire).as_wire() == wire


def test_entry_wire_round_trip():
    entry = FaultEntry(1_500.0, "gray-node", {"node": "alpha", "delay": 120.0})
    assert FaultEntry.from_wire(entry.as_wire()) == entry


def test_subset_keeps_indices_and_horizon():
    entries = [
        FaultEntry(1_000.0, "heal-network", {}),
        FaultEntry(2_000.0, "node-failure", {"node": "alpha"}),
        FaultEntry(3_000.0, "node-reboot", {"node": "alpha"}),
    ]
    schedule = ChaosSchedule(entries=entries, horizon=9_000.0)
    subset = schedule.subset([0, 2])
    assert [e.kind for e in subset.entries] == ["heal-network", "node-reboot"]
    assert subset.horizon == 9_000.0


def test_sorted_entries_stable_ties():
    entries = [
        FaultEntry(1_000.0, "node-failure", {"node": "beta"}),
        FaultEntry(1_000.0, "heal-network", {}),
    ]
    schedule = ChaosSchedule(entries=entries)
    assert [e.kind for e in schedule.sorted_entries()] == ["heal-network", "node-failure"]


def test_destructive_faults_come_with_repairs():
    generator = make_generator(11)
    repair_for = {
        "bluescreen": "node-reboot",
        "node-failure": "node-reboot",
        "middleware-crash": "reinstall-middleware",
        "partition": "heal-network",
        "asym-partition": "heal-network",
    }
    for _ in range(15):
        schedule = generator.generate()
        kinds = [entry.kind for entry in schedule.sorted_entries()]
        for index, kind in enumerate(kinds):
            if kind in repair_for:
                assert repair_for[kind] in kinds[index + 1 :]


# -- drifting fault-mix schedules -------------------------------------------


def _drift(profile):
    from repro.chaos.schedule import drift_schedule

    return drift_schedule(profile, ["alpha", "beta"], "synthetic")


def test_drift_schedule_is_deterministic():
    first = _drift("mixed")
    second = _drift("mixed")
    assert first.as_wire() == second.as_wire()


def test_drift_profiles_cover_every_phase():
    from repro.chaos.schedule import (
        DRIFT_LEAD_IN,
        DRIFT_PHASE_LENGTH,
        DRIFT_PROFILES,
        DRIFT_TAIL,
    )

    mixed = _drift("mixed")
    phases = len(DRIFT_PROFILES["mixed"])
    assert mixed.horizon == DRIFT_LEAD_IN + phases * DRIFT_PHASE_LENGTH + DRIFT_TAIL
    kinds = {entry.kind for entry in mixed.entries}
    assert {"app-crash", "app-hang", "gray-node", "partition",
            "heal-network", "sticky-app-crash"} <= kinds


def test_drift_entries_are_buildable_and_inside_horizon():
    for profile in ("crashy", "gray", "partition", "sticky", "mixed"):
        schedule = _drift(profile)
        for entry in schedule.sorted_entries():
            assert entry.at < schedule.horizon
            entry.build()  # raises on a bad kind/params pairing


def test_drift_destructive_faults_hit_both_nodes_symmetrically():
    # Placement fairness: every destructive motif targets both nodes, so
    # no policy can win by being lucky about where faults land.
    from repro.chaos.schedule import DRIFT_DESTRUCTIVE_KINDS

    for profile in ("crashy", "sticky", "mixed"):
        schedule = _drift(profile)
        per_node = {"alpha": 0, "beta": 0}
        for entry in schedule.entries:
            if entry.kind in DRIFT_DESTRUCTIVE_KINDS and "node" in entry.params:
                per_node[entry.params["node"]] += 1
        assert per_node["alpha"] == per_node["beta"]


def test_unknown_drift_profile_rejected():
    import pytest
    from repro.errors import FaultInjectionError

    with pytest.raises(FaultInjectionError):
        _drift("nope")
