"""Planted HOT002: diagnostic string formatted eagerly, used conditionally."""


class Hot:
    def __init__(self):
        self.errors = []

    def run(self, item):
        message = f"item {item} out of range"  # expect: HOT002
        if item < 0:
            self.errors.append(message)
        return item
