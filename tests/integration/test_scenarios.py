"""Integration tests: the paper's reference configurations (F1a/F1b/F2/F3)."""

from repro.core.status import ComponentStatus
from repro.harness.experiments import exp_architecture, exp_demo_config, exp_reference_configs
from repro.harness.scenario import build_demo, build_integrated, build_remote_monitoring


def test_f1a_remote_monitoring_data_flow_and_failover():
    rows = exp_reference_configs(seed=21)
    f1a = rows[0]
    assert f1a["config"].startswith("F1a")
    assert f1a["survived"]
    assert f1a["primary_after"] != f1a["primary_before"]
    assert f1a["updates_before"] > 100


def test_f1b_integrated_survives_failover():
    rows = exp_reference_configs(seed=21)
    f1b = rows[1]
    assert f1b["survived"]
    assert f1b["primary_after"] != f1b["primary_before"]


def test_f1b_opc_server_rebuilds_cache_from_devices():
    """Server FTIM is stateless: after failover the new server's cache is
    rebuilt live from the PLC, not restored from a checkpoint."""
    scenario = build_integrated(seed=22)
    scenario.start()
    scenario.run_for(15_000.0)
    primary = scenario.pair.primary_node()
    scenario.systems[primary].power_off()
    scenario.run_for(15_000.0)
    new_primary = scenario.pair.primary_node()
    server_app, _client_app = scenario.pair.all_apps[new_primary]
    status = server_app.server.GetStatus()
    assert status["state"] == "running"
    assert status["update_count"] > 0
    # The new server is a fresh instance (no checkpoint restore happened).
    assert server_app.api.ftim.GetStats()["checkpoints"] == 0


def test_f2_architecture_fully_wired():
    result = exp_architecture(seed=23)
    assert result["engine_processes_alive"]
    assert result["ftim_linked"]
    assert result["ftim_heartbeats"] > 50
    assert result["checkpoints_sent"] > 5
    assert result["checkpoints_mirrored"] > 5
    assert result["checkpoint_acked_seq"] >= 1
    assert result["diverter_messages"] >= 0
    assert result["monitor_reports"] > 10
    assert result["monitor_sees_primary"]
    assert not result["app_running_on_backup"]


def test_f3_table1_software_configuration():
    rows = exp_demo_config(seed=24)
    by_node = {row["node"]: row for row in rows}
    assert set(by_node) == {"node1", "node2", "test-pc"}
    # Exactly one of the pair runs the app; both run engines.
    pair_rows = [by_node["node1"], by_node["node2"]]
    assert all(row["engine_alive"] for row in pair_rows)
    assert sorted(row["role"] for row in pair_rows) == ["backup", "primary"]
    assert sum(row["app_running"] for row in pair_rows) == 1
    assert all(row["app_running"] == row["expected_app_running"] for row in rows)
    assert by_node["test-pc"]["app_running"]  # telephone simulator running


def test_demo_monitor_display_tracks_roles():
    demo = build_demo(seed=25)
    demo.start()
    demo.run_for(10_000.0)
    rendered = demo.monitor.render()
    assert "node1" in rendered and "node2" in rendered
    assert demo.monitor.current_primary() == demo.pair.primary_node()


def test_f1a_fieldbus_failure_degrades_quality_not_availability():
    """Fieldbus loss (plant-side fault) must not trigger a PC failover —
    the OPC layer reports BAD quality instead."""
    scenario = build_remote_monitoring(seed=26)
    scenario.start()
    scenario.run_for(10_000.0)
    primary_before = scenario.pair.primary_node()
    scenario.fieldbuses["devicenet0"].fail()
    scenario.run_for(5_000.0)
    assert scenario.pair.primary_node() == primary_before  # no failover
    quality = scenario.opc_server.namespace.read("plc1.temp").quality
    assert quality.is_bad
    scenario.fieldbuses["devicenet0"].repair()
    scenario.run_for(5_000.0)
    assert scenario.opc_server.namespace.read("plc1.temp").quality.is_good
