"""Clean twin of race103: mutation and iteration both direct.

RACE003 territory — the effects pass must not echo it.
"""


class Spool:
    def __init__(self, kernel):
        self.kernel = kernel
        self.items = []

    def start(self):
        self.kernel.schedule(2.0, self.on_flush)
        self.kernel.schedule(2.0, self.on_scan)

    def on_flush(self):
        self.items.append(1)

    def on_scan(self):
        total = 0
        for item in self.items:
            total += item
        return total
