"""Corpus gate for the lifecycle pass (LIFE001-LIFE006).

Every ``life00X_planted.py`` under ``tests/analysis/corpus/`` must
produce exactly one lifecycle finding — the rule id and line named by
its ``# expect: RULEID`` marker — and every ``life00X_clean.py`` twin
must produce none.  The corpus runs under the shipped default manifest:
acquire matching is name-based (``schedule``/``watch``/``subscribe``/
``create_process``), so the corpus classes need no imports.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.analysis import lifecycle
from repro.analysis.walker import load_sources, run_passes

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
MARKER = re.compile(r"#\s*expect:\s*(LIFE\d+)")

PLANTED = sorted(f for f in os.listdir(CORPUS) if f.startswith("life") and f.endswith("_planted.py"))
CLEAN = sorted(f for f in os.listdir(CORPUS) if f.startswith("life") and f.endswith("_clean.py"))


def life_findings(name):
    files, load_findings = load_sources([os.path.join(CORPUS, name)])
    assert load_findings == [], f"{name} failed to load cleanly"
    return run_passes(files, [lifecycle.run])


def expected_marker(name):
    """(rule_id, line) from the file's single ``# expect:`` marker."""
    with open(os.path.join(CORPUS, name), "r", encoding="utf-8") as handle:
        hits = [
            (match.group(1), lineno)
            for lineno, line in enumerate(handle, start=1)
            for match in [MARKER.search(line)]
            if match
        ]
    assert len(hits) == 1, f"{name} must carry exactly one expect marker"
    return hits[0]


def test_corpus_is_complete():
    planted_rules = {expected_marker(name)[0] for name in PLANTED}
    assert planted_rules == {"LIFE001", "LIFE002", "LIFE003", "LIFE004", "LIFE005", "LIFE006"}
    # every planted file has a clean twin
    assert [n.replace("_clean", "_planted") for n in CLEAN] == PLANTED


@pytest.mark.parametrize("name", PLANTED)
def test_planted_defect_is_flagged_exactly(name):
    rule_id, line = expected_marker(name)
    found = [(f.rule.rule_id, f.line) for f in life_findings(name)]
    assert found == [(rule_id, line)]


@pytest.mark.parametrize("name", CLEAN)
def test_clean_twin_is_quiet(name):
    assert life_findings(name) == []
