"""Corpus gate for the hotpath pass (HOT001-HOT006).

Every ``hot00X_planted.py`` under ``tests/analysis/corpus/`` must produce
exactly one hot finding — the rule id and line named by its
``# expect: RULEID`` marker — and every ``hot00X_clean.py`` twin must
produce none, under the corpus root convention: each corpus module
declares ``Hot.run`` as its only hot root.
"""

from __future__ import annotations

import os
import re

import pytest

from repro.analysis import hotpath
from repro.analysis.hotpath import RootSpec
from repro.analysis.walker import load_sources, run_passes

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
MARKER = re.compile(r"#\s*expect:\s*(HOT\d+)")

PLANTED = sorted(f for f in os.listdir(CORPUS) if f.startswith("hot") and f.endswith("_planted.py"))
CLEAN = sorted(f for f in os.listdir(CORPUS) if f.startswith("hot") and f.endswith("_clean.py"))


def hot_findings(name):
    files, load_findings = load_sources([os.path.join(CORPUS, name)])
    assert load_findings == [], f"{name} failed to load cleanly"
    roots = [RootSpec(name[: -len(".py")], "Hot.run")]
    return run_passes(files, [lambda fs: hotpath.run_with_roots(fs, roots)])


def expected_marker(name):
    """(rule_id, line) from the file's single ``# expect:`` marker."""
    with open(os.path.join(CORPUS, name), "r", encoding="utf-8") as handle:
        hits = [
            (match.group(1), lineno)
            for lineno, line in enumerate(handle, start=1)
            for match in [MARKER.search(line)]
            if match
        ]
    assert len(hits) == 1, f"{name} must carry exactly one expect marker"
    return hits[0]


def test_corpus_is_complete():
    planted_rules = {expected_marker(name)[0] for name in PLANTED}
    assert planted_rules == {"HOT001", "HOT002", "HOT003", "HOT004", "HOT005", "HOT006"}
    # every planted file has a clean twin
    assert [n.replace("_clean", "_planted") for n in CLEAN] == PLANTED


@pytest.mark.parametrize("name", PLANTED)
def test_planted_defect_is_flagged_exactly(name):
    rule_id, line = expected_marker(name)
    found = [(f.rule.rule_id, f.line) for f in hot_findings(name)]
    assert found == [(rule_id, line)]


@pytest.mark.parametrize("name", CLEAN)
def test_clean_twin_stays_clean(name):
    assert hot_findings(name) == []
