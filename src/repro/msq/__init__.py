"""Message-queue substrate (Microsoft Message Queue stand-in).

The paper's Message Diverter "uses Microsoft Message Queue ... the message
queue will store and transmit messages to the primary copy of the
application.  If a message is sent during a switchover, the message
non-delivery is detected and retried" (§2.2.3).  This package provides
those semantics:

* :class:`MsmqQueue` — FIFO queue with persistent/express messages,
  journaling and push subscriptions.
* :class:`QueueManager` — per-node queue service; survives process and OS
  crashes (persistent messages are on disk) but loses express messages.
* store-and-forward transport with acknowledgement, retry and
  deduplication, plus a dead-letter queue for undeliverable messages.
"""

from repro.msq.queue import MsmqQueue, QueueMessage
from repro.msq.manager import QueueManager, DEAD_LETTER_QUEUE

__all__ = ["DEAD_LETTER_QUEUE", "MsmqQueue", "QueueManager", "QueueMessage"]
