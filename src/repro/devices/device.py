"""Field devices: sensors, actuators, valves."""

from __future__ import annotations

from typing import Optional

from repro.devices.signals import SignalModel


class Device:
    """Base field device."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.healthy = True

    def fail(self) -> None:
        """Put the device into a failed state (reads go bad)."""
        self.healthy = False

    def repair(self) -> None:
        """Restore the device."""
        self.healthy = True

    def __repr__(self) -> str:
        state = "ok" if self.healthy else "failed"
        return f"{type(self).__name__}({self.name}, {state})"


class Sensor(Device):
    """An analogue input sampling a :class:`SignalModel`."""

    def __init__(self, name: str, signal: SignalModel, noise: float = 0.0) -> None:
        super().__init__(name)
        self.signal = signal
        self.noise = noise
        self.last_value: Optional[float] = None

    def read(self, time: float, rng) -> float:
        """Sample the process variable (raises if failed)."""
        if not self.healthy:
            raise IOError(f"sensor {self.name} failed")
        value = self.signal.sample(time, rng)
        if self.noise > 0:
            value += rng.gauss(0.0, self.noise)
        self.last_value = value
        return value


class Actuator(Device):
    """An analogue output holding the last commanded value."""

    def __init__(self, name: str, initial: float = 0.0) -> None:
        super().__init__(name)
        self.commanded = initial
        self.write_count = 0

    def write(self, value: float) -> None:
        """Command a new output (raises if failed)."""
        if not self.healthy:
            raise IOError(f"actuator {self.name} failed")
        self.commanded = float(value)
        self.write_count += 1


class Valve(Device):
    """A discrete valve with travel time between open and closed.

    ``position`` ramps between 0.0 (closed) and 1.0 (open); callers advance
    it by polling :meth:`position_at` during PLC scans.
    """

    def __init__(self, name: str, travel_time: float = 2000.0, initially_open: bool = False) -> None:
        super().__init__(name)
        self.travel_time = max(travel_time, 1e-9)
        self.target = 1.0 if initially_open else 0.0
        self._position = self.target
        self._last_update = 0.0

    def command(self, open_valve: bool, time: float) -> None:
        """Start moving towards open/closed."""
        if not self.healthy:
            raise IOError(f"valve {self.name} failed")
        self.position_at(time)  # settle position up to now
        self.target = 1.0 if open_valve else 0.0

    def position_at(self, time: float) -> float:
        """Valve position in [0, 1] at *time* (advances internal state)."""
        elapsed = max(0.0, time - self._last_update)
        self._last_update = time
        max_travel = elapsed / self.travel_time
        delta = self.target - self._position
        if abs(delta) <= max_travel:
            self._position = self.target
        else:
            self._position += max_travel if delta > 0 else -max_travel
        return self._position

    @property
    def fully_open(self) -> bool:
        """Whether the valve has reached the open position."""
        return self._position >= 1.0 - 1e-9

    @property
    def fully_closed(self) -> bool:
        """Whether the valve has reached the closed position."""
        return self._position <= 1e-9
