"""Unit tests for the SCADA monitor app and the synthetic state app."""

import pytest

from repro.apps.scada import AlarmRule, ScadaMonitorApp
from repro.apps.synthetic import SyntheticStateApp
from repro.harness.scenario import build_remote_monitoring

from tests.core.util import make_pair_world


def test_scada_tracks_latest_values_and_trends():
    scenario = build_remote_monitoring(seed=4)
    scenario.start()
    scenario.run_for(10_000.0)
    app = scenario.primary_app()
    state = app.state()
    assert "plc1.temp" in state["latest"]
    assert len(state["trend"]["plc1.temp"]) > 5
    assert app.updates_seen() > 20


def test_scada_trend_buffers_bounded():
    scenario = build_remote_monitoring(seed=4)
    scenario.start()
    scenario.run_for(60_000.0)
    app = scenario.primary_app()
    for tail in app.state()["trend"].values():
        assert len(tail) <= app.trend_depth


def test_scada_alarms_fire_above_limit():
    scenario = build_remote_monitoring(seed=4)
    scenario.start()
    # The temp sine (offset 60, amplitude 25) exceeds the 80.0 limit each
    # cycle (period 20 s): run a few cycles.
    scenario.run_for(60_000.0)
    app = scenario.primary_app()
    assert app.alarm_count("plc1.temp") > 0
    log = app.state()["alarm_log"]
    assert all(entry[1] == "plc1.temp" and entry[2] > 80.0 for entry in log)


def test_scada_control_write_reaches_actuator():
    scenario = build_remote_monitoring(seed=4)
    scenario.start()
    scenario.run_for(60_000.0)
    app = scenario.primary_app()
    assert app.state()["writes_issued"] > 0


def test_scada_alarm_rule_dataclass():
    rule = AlarmRule("item", high_limit=10.0, control_write=("out", 1.0))
    assert rule.control_write == ("out", 1.0)


# -- synthetic app ------------------------------------------------------------------


def test_synthetic_modes_validated():
    with pytest.raises(ValueError):
        SyntheticStateApp(mode="bogus")


def test_synthetic_ticks_and_state_restore():
    world = make_pair_world(app_factory=lambda: SyntheticStateApp(cold_kb=2, mode="full", tick_period=50.0))
    world.start()
    world.run_for(2_000.0)
    app = world.pair.apps[world.primary]
    assert app.ticks() >= 30
    space = app.process.address_space
    assert space.read("hot_00") == app.ticks()
    assert space.read("cold_0000") == "x" * 1024


def test_synthetic_incremental_mode_sets_ftim_flag():
    world = make_pair_world(app_factory=lambda: SyntheticStateApp(cold_kb=1, mode="incremental"))
    world.start()
    app = world.pair.apps[world.primary]
    assert app.api.ftim.incremental
    assert not app.api.ftim.selective


def test_synthetic_selective_mode_designates_hot_vars():
    world = make_pair_world(app_factory=lambda: SyntheticStateApp(cold_kb=1, mode="selective", hot_vars=3))
    world.start()
    app = world.pair.apps[world.primary]
    checkpoint = app.api.ftim.capture()
    assert set(checkpoint.image["globals"]) == {"hot_00", "hot_01", "hot_02", "ticks"}
