"""Property-based test: partitions always resolve after healing.

During a full partition a dual primary is *expected* (each side believes
the other dead — the §3.2 concern).  The invariant is about what happens
afterwards: for any schedule of partition windows, once the network heals
and the pair settles, exactly one primary remains, exactly one copy runs,
and the loser of the resolution stopped its application.
"""

from hypothesis import given, settings, strategies as st

from repro.core.roles import Role

from tests.core.util import make_pair_world


@st.composite
def partition_schedules(draw):
    windows = draw(st.integers(min_value=1, max_value=3))
    schedule = []
    for _ in range(windows):
        start_gap = draw(st.floats(min_value=1_000.0, max_value=5_000.0))
        duration = draw(st.floats(min_value=500.0, max_value=8_000.0))
        schedule.append((start_gap, duration))
    return schedule


@given(schedule=partition_schedules(), seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_partitions_always_resolve_to_single_primary(schedule, seed):
    world = make_pair_world(seed=seed)
    world.start()
    world.run_for(3_000.0)

    for start_gap, duration in schedule:
        world.run_for(start_gap)
        world.partitions.split_all(["alpha"], ["beta"])
        world.run_for(duration)
        world.partitions.heal_all()
        world.run_for(8_000.0)  # resolution + restabilisation

        primaries = [
            name
            for name in world.pair.node_names
            if world.pair.engines[name].alive and world.pair.engines[name].role is Role.PRIMARY
        ]
        assert len(primaries) == 1, primaries
        running = world.pair.running_app_nodes()
        assert running == primaries, (running, primaries)
        assert world.pair.is_stable()

    # Incarnations agree after the final resolution.
    incarnations = {world.pair.engines[name].negotiator.incarnation for name in world.pair.node_names}
    assert len(incarnations) == 1
