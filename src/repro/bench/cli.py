"""Command-line driver: ``python -m repro.bench`` / ``oftt-bench``.

Runs the bench catalogue and prints a ``repro.bench/v1`` JSON report.
``--save`` also writes the report to the next ``BENCH_<n>.json`` at the
repo root (or use ``--out PATH`` for an explicit destination)::

    oftt-bench                            # quick profile, report to stdout
    oftt-bench --profile full --jobs 4 --save
    python -m repro.bench --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import os
import platform
import sys
from typing import Any, Dict, Optional, Sequence

# oftt-lint: file-ok[ambient-io] -- the bench driver reads host facts and writes reports.
from repro.bench.benches import PROFILES, run_benches
from repro.bench.report import build_report, next_bench_path, render_json
from repro.perf.executor import add_jobs_argument


def host_facts() -> Dict[str, Any]:
    """The honest context a measurement is meaningless without."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": sys.platform,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oftt-bench",
        description="Benchmark harness: sim hot paths and end-to-end campaign/replay workloads.",
    )
    parser.add_argument("--profile", choices=PROFILES, default="quick",
                        help="bench sizes: quick (default) or full (the 100-schedule campaign)")
    parser.add_argument("--save", action="store_true",
                        help="write the report to the next BENCH_<n>.json in --root")
    parser.add_argument("--root", default=".",
                        help="directory --save numbers reports in (default: current directory)")
    parser.add_argument("--out", default="", help="write the report to this exact path")
    add_jobs_argument(parser, default=2)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    benches = run_benches(profile=options.profile, jobs=options.jobs)
    report = build_report(benches, profile=options.profile, jobs=options.jobs, host=host_facts())
    rendered = render_json(report)
    sys.stdout.write(rendered)

    destinations = []
    if options.out:
        destinations.append(options.out)
    if options.save:
        destinations.append(next_bench_path(options.root))
    for path in destinations:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {path}", file=sys.stderr)

    failed = [bench["name"] for bench in benches
              if not all(value is not False for value in bench["work"].values())]
    if failed:
        print(f"oftt-bench: work checks failed in: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
