"""CLI contract tests for ``oftt-chaos``."""

import json

from repro.chaos.cli import main
from repro.chaos.report import JSON_SCHEMA


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_small_campaign_passes(capsys):
    code, out = run_cli(capsys, "--seeds", "1", "--schedules", "2")
    assert code == 0
    assert "2 run(s): 2 ok" in out


def test_json_report_schema(capsys):
    code, out = run_cli(capsys, "--seeds", "1", "--schedules", "1", "--json")
    assert code == 0
    document = json.loads(out)
    assert document["schema"] == JSON_SCHEMA
    assert document["mode"] == "campaign"
    assert document["summary"]["runs"] == 1
    assert document["summary"]["failed"] == 0
    assert document["minimization"] is None
    assert len(document["runs"]) == 1
    assert document["runs"][0]["passed"] is True


def test_self_test_catches_sabotage_and_minimizes(capsys):
    code, out = run_cli(capsys, "--self-test", "--json")
    assert code == 1
    document = json.loads(out)
    assert document["mode"] == "self-test"
    # Both sabotage cases must be caught by their dedicated monitors.
    assert document["summary"]["failed"] == 2
    assert document["summary"]["violations"] >= 2
    fired = {v["invariant"] for run in document["runs"] for v in run["violations"]}
    assert "split-brain" in fired
    assert "restart-thrash" in fired
    minimization = document["minimization"]
    assert minimization is not None
    assert minimization["reproduced"] is True
    assert minimization["minimal_size"] <= 3


def test_drift_campaign_green_with_and_without_policy(capsys):
    code, out = run_cli(capsys, "--drift", "crashy", "--seeds", "1")
    assert code == 0
    code, out = run_cli(capsys, "--drift", "crashy", "--policy", "--seeds", "1", "--json")
    assert code == 0
    document = json.loads(out)
    assert document["mode"] == "drift:crashy"
    assert document["summary"]["failed"] == 0


def test_governed_thrash_schedule_is_green_without_sabotage():
    # The exact self-test recipe minus the sabotage: the adaptive
    # policy's thrash detector escalates before the restart-thrash
    # monitor's budget is burned.
    from repro.chaos.cli import (
        SELF_TEST_THRASH_ENTRIES,
        SELF_TEST_THRASH_HORIZON,
        _thrash_config,
    )
    from repro.chaos.runner import run_schedule
    from repro.chaos.schedule import ChaosSchedule

    schedule = ChaosSchedule(
        entries=list(SELF_TEST_THRASH_ENTRIES), horizon=SELF_TEST_THRASH_HORIZON
    )
    result = run_schedule(0, schedule, config=_thrash_config())
    assert result.passed, result.violation_names()


def test_same_invocation_is_byte_identical(capsys):
    _, first = run_cli(capsys, "--seeds", "1", "--schedules", "2", "--json")
    _, second = run_cli(capsys, "--seeds", "1", "--schedules", "2", "--json")
    assert first == second


def test_usage_error_exit_code(capsys):
    assert main(["--seeds", "0"]) == 2


def test_out_writes_report_file(tmp_path, capsys):
    target = tmp_path / "report.json"
    code, out = run_cli(capsys, "--seeds", "1", "--schedules", "1", "--json", "--out", str(target))
    assert code == 0
    assert target.read_text(encoding="utf-8") == out
