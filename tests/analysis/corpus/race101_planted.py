"""Planted RACE101: same-tick write-write hidden behind a helper call.

``on_poll`` writes ``self.state`` directly; ``on_tick`` writes it only
through ``_bump``, so the intraprocedural pass sees a single writer.
"""


class Widget:
    def __init__(self, kernel):
        self.kernel = kernel
        self.state = 0

    def start(self):
        self.kernel.schedule(5.0, self.on_tick)
        self.kernel.schedule(5.0, self.on_poll)

    def on_poll(self):  # expect: RACE101
        self.state = 2

    def on_tick(self):
        self._bump()

    def _bump(self):
        self.state = 1
