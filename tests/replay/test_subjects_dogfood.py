"""Dogfood gate: the in-repo scenarios and fault campaign replay cleanly.

These are the acceptance checks for the determinism sweep: every
registered subject — two-plus fault-free scenarios, the §4 fault
campaign, and the checkpoint round-trips — must report zero divergences.
"""

from __future__ import annotations

import pytest

from repro.replay.runner import ReplayResult, RoundTripResult
from repro.replay.subjects import SUBJECTS, run_subject, subject_names


def test_registry_covers_scenarios_and_a_campaign():
    traces = subject_names(kind="trace")
    roundtrips = subject_names(kind="roundtrip")
    assert len(traces) >= 3  # >=2 plain scenarios + the fault campaign
    assert "demo-campaign" in traces
    assert len(roundtrips) >= 2


@pytest.mark.parametrize("name", sorted(SUBJECTS))
def test_subject_is_replay_deterministic(name):
    result = run_subject(name, seed=0)
    if isinstance(result, ReplayResult):
        detail = result.divergence.render() if result.divergence else result.payload_mismatch
    else:
        assert isinstance(result, RoundTripResult)
        detail = result.mismatch
    assert result.ok, f"{name} diverged:\n{detail}"


def test_campaign_subject_compares_outcome_signatures():
    result = run_subject("demo-campaign", seed=1)
    assert isinstance(result, ReplayResult)
    assert result.ok, result.divergence.render() if result.divergence else result.payload_mismatch
    # The campaign ran all four §4 demos and produced real trace volume.
    assert result.events > 20
