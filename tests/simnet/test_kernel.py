"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimError
from repro.simnet.events import AllOf, AnyOf, Event, Timeout
from repro.simnet.kernel import Interrupt, SimKernel


def test_schedule_runs_in_time_order():
    kernel = SimKernel()
    seen = []
    kernel.schedule(30.0, seen.append, "c")
    kernel.schedule(10.0, seen.append, "a")
    kernel.schedule(20.0, seen.append, "b")
    kernel.run()
    assert seen == ["a", "b", "c"]
    assert kernel.now == 30.0


def test_equal_timestamps_run_in_insertion_order():
    kernel = SimKernel()
    seen = []
    for label in ("first", "second", "third"):
        kernel.schedule(5.0, seen.append, label)
    kernel.run()
    assert seen == ["first", "second", "third"]


def test_run_until_stops_and_advances_clock_exactly():
    kernel = SimKernel()
    seen = []
    kernel.schedule(10.0, seen.append, "early")
    kernel.schedule(100.0, seen.append, "late")
    kernel.run(until=50.0)
    assert seen == ["early"]
    assert kernel.now == 50.0
    kernel.run(until=150.0)
    assert seen == ["early", "late"]
    assert kernel.now == 150.0


def test_cancelled_calls_do_not_run():
    kernel = SimKernel()
    seen = []
    call = kernel.schedule(10.0, seen.append, "never")
    kernel.cancel(call)
    kernel.run()
    assert seen == []


def test_negative_delay_rejected():
    kernel = SimKernel()
    with pytest.raises(SimError):
        kernel.schedule(-1.0, lambda: None)


def test_step_executes_single_event():
    kernel = SimKernel()
    seen = []
    kernel.schedule(1.0, seen.append, 1)
    kernel.schedule(2.0, seen.append, 2)
    assert kernel.step()
    assert seen == [1]
    assert kernel.step()
    assert seen == [1, 2]
    assert not kernel.step()


def test_process_runs_and_fires_with_return_value():
    kernel = SimKernel()

    def body():
        yield Timeout(5.0)
        yield Timeout(5.0)
        return "done"

    process = kernel.spawn(body())
    kernel.run()
    assert not process.alive
    assert process.fired
    assert process.value == "done"
    assert kernel.now == 10.0


def test_process_can_join_another_process():
    kernel = SimKernel()
    order = []

    def child():
        yield Timeout(7.0)
        order.append("child")
        return 42

    def parent():
        child_process = kernel.spawn(child())
        result = yield child_process
        order.append(("parent", result))

    kernel.spawn(parent())
    kernel.run()
    assert order == ["child", ("parent", 42)]


def test_interrupt_raises_inside_generator():
    kernel = SimKernel()
    caught = []

    def body():
        try:
            yield Timeout(100.0)
        except Interrupt as interrupt:
            caught.append(interrupt.cause)
            yield Timeout(1.0)
        return "recovered"

    process = kernel.spawn(body())
    kernel.schedule(10.0, process.interrupt, "reason")
    kernel.run()
    assert caught == ["reason"]
    assert process.value == "recovered"


def test_unhandled_interrupt_kills_process_quietly():
    kernel = SimKernel()

    def body():
        yield Timeout(100.0)

    process = kernel.spawn(body())
    kernel.schedule(10.0, process.interrupt, None)
    kernel.run()
    assert not process.alive
    assert process.fired


def test_kill_stops_process_without_cleanup():
    kernel = SimKernel()
    progressed = []

    def body():
        while True:
            yield Timeout(10.0)
            progressed.append(kernel.now)

    process = kernel.spawn(body())
    kernel.run(until=35.0)
    process.kill()
    kernel.run(until=200.0)
    assert progressed == [10.0, 20.0, 30.0]
    assert not process.alive


def test_kill_is_idempotent():
    kernel = SimKernel()

    def body():
        yield Timeout(10.0)

    process = kernel.spawn(body())
    process.kill()
    process.kill()
    assert not process.alive


def test_process_error_raises_from_run_by_default():
    kernel = SimKernel()

    def body():
        yield Timeout(1.0)
        raise ValueError("boom")

    kernel.spawn(body())
    with pytest.raises(ValueError, match="boom"):
        kernel.run()


def test_process_error_recorded_with_record_policy():
    kernel = SimKernel()

    def body():
        yield Timeout(1.0)
        raise ValueError("boom")

    kernel_recording = SimKernel(on_error="record")
    process = kernel_recording.spawn(body())
    kernel_recording.run()
    assert len(kernel_recording.process_errors) == 1
    assert kernel_recording.process_errors[0][0] is process


def test_unknown_error_policy_rejected():
    with pytest.raises(SimError):
        SimKernel(on_error="explode")


def test_yielding_non_waitable_is_error():
    kernel = SimKernel()

    def body():
        yield 42

    kernel.spawn(body())
    with pytest.raises(SimError):
        kernel.run()


def test_pending_counts_non_cancelled():
    kernel = SimKernel()
    call = kernel.schedule(5.0, lambda: None)
    kernel.schedule(6.0, lambda: None)
    assert kernel.pending == 2
    kernel.cancel(call)
    assert kernel.pending == 1
