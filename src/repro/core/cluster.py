"""Pair assembly: wire two nodes into an OFTT logical execution unit.

"Two redundant computers are paired up via one or dual Ethernet networks
and form a single logic execution unit" (§2.1).  :class:`OfttPair` builds
exactly that: given two booted NT machines and an application factory, it
installs a :class:`NodeContext`, an engine and an application copy on each
node, starts negotiation, and exposes the queries fault-injection
harnesses need (who is primary, switchover timing, state of both copies).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.com.runtime import ComRuntime
from repro.core.appdriver import NodeContext, OfttApplication
from repro.core.config import OfttConfig
from repro.core.diverter import MessageDiverter
from repro.core.engine import OfttEngine
from repro.core.roles import Role
from repro.errors import OfttError
from repro.msq.manager import QueueManager
from repro.nt.system import NTSystem
from repro.simnet.network import Network
from repro.simnet.trace import TraceLog

# app_factory() -> a fresh OfttApplication (or list of them) per node.
AppFactory = Callable[[], object]


class OfttPair:
    """A primary/backup pair plus its application copies."""

    def __init__(
        self,
        network: Network,
        systems: Dict[str, NTSystem],
        config: OfttConfig,
        app_factory: AppFactory,
        unit: str = "unit",
        monitor_nodes: Optional[List[str]] = None,
        subscriber_nodes: Optional[List[str]] = None,
        preferred_primary: str = "",
        trace: Optional[TraceLog] = None,
    ) -> None:
        if len(systems) != 2:
            raise OfttError("an OFTT pair needs exactly two systems")
        config.validate()
        self.network = network
        self.kernel = network.kernel
        self.config = config
        self.unit = unit
        self.trace = trace if trace is not None else network.trace
        self.node_names = sorted(systems)
        self.systems = systems
        self.contexts: Dict[str, NodeContext] = {}
        self.engines: Dict[str, OfttEngine] = {}
        #: First (primary) application per node — the common single-app case.
        self.apps: Dict[str, OfttApplication] = {}
        #: Every managed application per node.
        self.all_apps: Dict[str, List[OfttApplication]] = {}
        self.diverter = MessageDiverter(unit, self.node_names[0], self.node_names[1])
        self._app_factory = app_factory
        self._monitor_nodes = list(monitor_nodes or [])
        self._subscriber_nodes = list(subscriber_nodes or [])
        self._preferred_primary = preferred_primary
        for name in self.node_names:
            self._install_node(name)

    def _install_node(self, name: str) -> None:
        system = self.systems[name]
        if not system.is_up:
            raise OfttError(f"node {name} must be booted before pair assembly")
        peer = self.node_names[1] if name == self.node_names[0] else self.node_names[0]
        runtime = ComRuntime(system, self.network)
        qmgr = QueueManager(
            self.kernel,
            self.network,
            system.node,
            retry_interval=self.config.msq_retry_interval,
            backoff_factor=self.config.msq_retry_backoff,
            max_retry_interval=self.config.msq_retry_max_interval,
            retry_jitter=self.config.msq_retry_jitter,
        )
        qmgr.attach_to_system(system)
        context = NodeContext(
            system=system,
            runtime=runtime,
            qmgr=qmgr,
            config=self.config,
            trace=self.trace,
        )
        produced = self._app_factory()
        applications = list(produced) if isinstance(produced, (list, tuple)) else [produced]
        for application in applications:
            application.install(context)
        engine = OfttEngine(
            context=context,
            peer_node=peer,
            application=applications,
            monitor_nodes=self._monitor_nodes,
            subscriber_nodes=self._subscriber_nodes,
            preferred_primary=self._preferred_primary,
        )
        engine.reinstall_hook = lambda node=name: self._policy_reinstall(node)
        self.diverter.open_inbox(qmgr)
        self.contexts[name] = context
        self.engines[name] = engine
        self.apps[name] = applications[0]
        self.all_apps[name] = applications

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> None:
        """Start both engines (they negotiate roles among themselves)."""
        for name in self.node_names:
            self.engines[name].start()

    def reinstall_node(self, name: str) -> None:
        """Rebuild one node's stack after its machine was rebooted.

        Models the NT service restart path: the engine and application
        are recreated on the (booted) machine and rejoin the pair.
        """
        system = self.systems[name]
        if not system.is_up:
            raise OfttError(f"reinstall_node({name}): machine is not up")
        self._install_node(name)
        self.engines[name].start()

    def _policy_reinstall(self, name: str) -> None:
        """Engine-requested reinstall (adaptive ladder stage 3).

        Tears down the requesting engine (orderly, so its apps stop and
        its FTIMs do not fail-stop a fresh copy) and rebuilds the stack
        in place — the automated form of :meth:`reinstall_node`.
        """
        engine = self.engines.get(name)
        if engine is not None and engine.alive:
            engine.shutdown()
        if not self.systems[name].is_up:
            return  # machine died since the decision; a reboot hook rebuilds
        self._install_node(name)
        self.engines[name].start()

    # -- queries ------------------------------------------------------------------------

    def engine(self, name: str) -> OfttEngine:
        """The engine on node *name*."""
        return self.engines[name]

    def app(self, name: str) -> OfttApplication:
        """The application copy on node *name*."""
        return self.apps[name]

    def primary_node(self) -> Optional[str]:
        """The node whose live engine currently holds PRIMARY (None if
        none, which happens transiently during negotiation/switchover)."""
        primaries = [
            name
            for name in self.node_names
            if self.engines[name].alive and self.engines[name].role is Role.PRIMARY
        ]
        if len(primaries) > 1:
            raise OfttError(f"dual primary: {primaries}")
        return primaries[0] if primaries else None

    def backup_node(self) -> Optional[str]:
        """The node whose live engine currently holds BACKUP."""
        backups = [
            name
            for name in self.node_names
            if self.engines[name].alive and self.engines[name].role is Role.BACKUP
        ]
        return backups[0] if backups else None

    def running_app_nodes(self) -> List[str]:
        """Nodes where any application copy is currently executing."""
        return [name for name in self.node_names if any(app.running for app in self.all_apps[name])]

    def is_stable(self) -> bool:
        """One live primary running the app (the pair's steady state)."""
        primary = None
        try:
            primary = self.primary_node()
        except OfttError:
            return False
        return primary is not None and all(app.running for app in self.all_apps[primary])

    def settle(self, max_time: float = 30_000.0, step: float = 50.0) -> float:
        """Run the simulation until :meth:`is_stable` (returns the time).

        Raises :class:`OfttError` if the pair does not stabilise within
        *max_time* simulated ms.
        """
        deadline = self.kernel.now + max_time
        while self.kernel.now < deadline:
            if self.is_stable():
                return self.kernel.now
            self.kernel.run(until=self.kernel.now + step)
        if self.is_stable():
            return self.kernel.now
        raise OfttError(f"pair {self.unit} did not stabilise within {max_time}ms")

    def __repr__(self) -> str:
        roles = {name: self.engines[name].role.value for name in self.node_names}
        return f"OfttPair({self.unit}, roles={roles})"
