"""The fault catalogue.

Every fault targets an :class:`~repro.faults.injector.Environment` — a
duck-typed bundle exposing ``systems`` (name → NTSystem), ``network``,
optionally ``pair`` (the OfttPair) and ``fieldbuses``.  Faults are
idempotent-ish: applying one to an already-failed target is a no-op
rather than an error, so randomized campaigns compose safely.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import FaultInjectionError
from repro.nt.system import SystemState


class Fault:
    """Base fault: subclasses implement :meth:`apply`."""

    #: §4 demo letter this fault reproduces ("" for extensions).
    demo_id = ""

    def apply(self, env: Any) -> None:
        """Inject the fault into *env* now."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable one-liner."""
        return type(self).__name__

    def _system(self, env: Any, node: str):
        if node not in env.systems:
            raise FaultInjectionError(f"no such node {node}")
        return env.systems[node]

    def __repr__(self) -> str:
        return self.describe()


class NodeFailure(Fault):
    """§4 demo (a): the machine loses power."""

    demo_id = "a"

    def __init__(self, node: str) -> None:
        self.node = node

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        if system.state is not SystemState.OFF:
            system.power_off()

    def describe(self) -> str:
        return f"node failure (power-off) on {self.node}"


class BlueScreen(Fault):
    """§4 demo (b): NT crash — the blue screen of death."""

    demo_id = "b"

    def __init__(self, node: str) -> None:
        self.node = node

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        if system.state is SystemState.UP:
            system.bluescreen()

    def describe(self) -> str:
        return f"NT crash (bluescreen) on {self.node}"


class AppCrash(Fault):
    """§4 demo (c): the application process dies."""

    demo_id = "c"

    def __init__(self, node: str, process_name: str) -> None:
        self.node = node
        self.process_name = process_name

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        process = system.find_process(self.process_name)
        if process is not None and process.alive:
            process.kill(code=-9)

    def describe(self) -> str:
        return f"application failure: {self.process_name} on {self.node}"


class TransientAppCrash(AppCrash):
    """A crash expected to be transient (exercises LOCAL_RESTART rules)."""

    demo_id = ""

    def describe(self) -> str:
        return f"transient application failure: {self.process_name} on {self.node}"


class AppHang(Fault):
    """The application wedges: process alive, threads stuck (heartbeats stop)."""

    def __init__(self, node: str, process_name: str) -> None:
        self.node = node
        self.process_name = process_name

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        process = system.find_process(self.process_name)
        if process is not None and process.alive:
            process.hang()

    def describe(self) -> str:
        return f"application hang: {self.process_name} on {self.node}"


class MiddlewareCrash(Fault):
    """§4 demo (d): the OFTT engine process dies."""

    demo_id = "d"

    def __init__(self, node: str) -> None:
        self.node = node

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        process = system.find_process("oftt-engine")
        if process is not None and process.alive:
            process.kill(code=-9)

    def describe(self) -> str:
        return f"OFTT middleware failure on {self.node}"


class LinkDown(Fault):
    """An entire Ethernet segment goes down."""

    def __init__(self, link: str) -> None:
        self.link = link

    def apply(self, env: Any) -> None:
        if self.link not in env.network.links:
            raise FaultInjectionError(f"no such link {self.link}")
        env.network.links[self.link].up = False

    def describe(self) -> str:
        return f"link down: {self.link}"


class NicDown(Fault):
    """One node's NIC on one segment fails (dual-network experiments)."""

    def __init__(self, node: str, link: str) -> None:
        self.node = node
        self.link = link

    def apply(self, env: Any) -> None:
        env.network.nodes[self.node].nic_down(self.link)

    def describe(self) -> str:
        return f"NIC down: {self.node} on {self.link}"


class NetworkPartition(Fault):
    """Partition every segment between two node groups."""

    def __init__(self, side_a: List[str], side_b: List[str]) -> None:
        self.side_a = list(side_a)
        self.side_b = list(side_b)

    def apply(self, env: Any) -> None:
        env.partitions.split_all(self.side_a, self.side_b)

    def describe(self) -> str:
        return f"network partition: {self.side_a} | {self.side_b}"


class FieldbusFailure(Fault):
    """The industrial network to the PLC devices fails."""

    def __init__(self, bus_name: str) -> None:
        self.bus_name = bus_name

    def apply(self, env: Any) -> None:
        buses = getattr(env, "fieldbuses", {})
        if self.bus_name not in buses:
            raise FaultInjectionError(f"no such fieldbus {self.bus_name}")
        buses[self.bus_name].fail()

    def describe(self) -> str:
        return f"fieldbus failure: {self.bus_name}"


class NodeReboot(Fault):
    """Power-cycle a node and (optionally) reinstall its OFTT stack.

    Models the repair action after demos (a)/(b): the machine comes back,
    the NT services restart, and the node rejoins the pair as backup.
    """

    def __init__(self, node: str, reinstall: bool = True, extra_delay: float = 0.0) -> None:
        self.node = node
        self.reinstall = reinstall
        self.extra_delay = extra_delay

    def apply(self, env: Any) -> None:
        system = self._system(env, self.node)
        if system.state is SystemState.UP:
            system.power_off()
        system.reboot(extra_delay=self.extra_delay)
        if self.reinstall and getattr(env, "pair", None) is not None:
            node = self.node

            def rejoin(booted_system) -> None:
                # One-shot: boot callbacks persist across reboots, and a
                # second reinstall on the same boot would collide.
                booted_system.on_boot.remove(rejoin)
                env.pair.reinstall_node(node)

            system.on_boot.append(rejoin)

    def describe(self) -> str:
        return f"reboot {self.node} (reinstall={self.reinstall})"
