"""OFTT configuration: timeouts, periods, recovery rules.

"How to recover from a detected failure is controlled by the recovery rule
that specifies whether to initiate a local recovery (e.g., a transient
fault), or to transfer control to the backup node (e.g., a permanent
fault).  An application that uses the OFTT can explicitly specify the
recovery rule either statically at compilation time or dynamically at
run-time" (§2.2.1).  Both are supported here: pass rules at construction
or swap them live with :meth:`OfttEngine.set_recovery_rule`.

All durations are simulated milliseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


class RecoveryAction(enum.Enum):
    """What the engine does about a failed component."""

    LOCAL_RESTART = "local-restart"
    FAILOVER = "failover"
    IGNORE = "ignore"


class GiveUpPolicy(enum.Enum):
    """What a node does when startup negotiation never hears the peer.

    ``SHUTDOWN`` is the paper's original logic ("It will shut down itself
    if it does not receive the message after a time-out period"), which
    §3.2 reports caused frequent false shutdowns under NT's start-up
    non-determinism.  ``GO_PRIMARY`` is the availability-oriented
    alternative: after exhausting retries, assume the peer is absent and
    run alone.
    """

    SHUTDOWN = "shutdown"
    GO_PRIMARY = "go-primary"


#: Valid ``OfttConfig.replication_strategy`` values.  Kept as a literal
#: here (the strategy registry lives in :mod:`repro.core.strategy`,
#: which imports this module); tests pin the two lists equal.
REPLICATION_STRATEGIES = ("cold-passive", "leader-follower", "log-replay-dr")


@dataclass(frozen=True)
class RecoveryRule:
    """Per-component recovery policy."""

    #: Local restarts attempted (within the window) before escalating.
    max_local_restarts: int = 1
    #: Delay before a local restart begins.
    restart_delay: float = 100.0
    #: Failures inside this window count against ``max_local_restarts``.
    transient_window: float = 30_000.0
    #: Action once local restarts are exhausted.
    escalation: RecoveryAction = RecoveryAction.FAILOVER

    @staticmethod
    def always_failover() -> "RecoveryRule":
        """Treat every failure as permanent."""
        return RecoveryRule(max_local_restarts=0)

    @staticmethod
    def local_only(max_restarts: int = 1_000_000) -> "RecoveryRule":
        """Never fail over; keep restarting locally."""
        return RecoveryRule(max_local_restarts=max_restarts, escalation=RecoveryAction.IGNORE)


@dataclass
class OfttConfig:
    """Tunables for one OFTT deployment (shared by both pair nodes)."""

    # Failure detection (§2.2.1: heartbeats with a pre-specified timeout).
    heartbeat_period: float = 100.0
    heartbeat_timeout: float = 500.0
    #: Consecutive sweeps past the timeout before a component (or the
    #: peer) is declared failed.  1 = the paper's behaviour; higher
    #: values desensitise the detector (see repro.core.heartbeat).
    heartbeat_miss_threshold: int = 1
    #: Also catch component death via OS process-exit hooks (faster than
    #: the heartbeat timeout; disable to measure pure heartbeat latency).
    use_exit_hooks: bool = True

    # Checkpointing (§2.2.2).
    checkpoint_period: float = 1_000.0
    #: Network timeout waiting for the peer's checkpoint acknowledgement.
    checkpoint_ack_timeout: float = 1_000.0
    #: Checkpoints kept in each store (latest is what recovery uses).
    checkpoint_history: int = 8

    # Startup negotiation (§3.2).
    startup_wait: float = 1_000.0
    startup_retries: int = 5
    give_up_policy: GiveUpPolicy = GiveUpPolicy.GO_PRIMARY

    # Peer monitoring.
    peer_heartbeat_period: float = 100.0
    peer_heartbeat_timeout: float = 500.0

    # Status reporting (§2.2.1 / §2.2.4).
    status_report_period: float = 1_000.0

    # MSMQ store-and-forward retry (§2.2.3 diverter redelivery).  The
    # retry interval after attempt *n* is
    # ``min(msq_retry_interval * msq_retry_backoff**(n-1), msq_retry_max_interval)``
    # plus uniform jitter in ``[0, msq_retry_jitter]`` drawn from the sim
    # RNG (so replay determinism holds).  backoff=1.0 reproduces the old
    # fixed cadence.
    msq_retry_interval: float = 250.0
    msq_retry_backoff: float = 2.0
    msq_retry_max_interval: float = 2_000.0
    msq_retry_jitter: float = 25.0

    # Replication strategy (see repro.core.strategy).  "cold-passive" is
    # the paper's primary/backup behaviour and the default.
    replication_strategy: str = "cold-passive"
    #: Leader-follower: period of the incremental state-update stream
    #: (overrides every FTIM's checkpoint period under that strategy).
    lf_update_period: float = 100.0
    #: Log-replay DR: node name of the disaster-recovery site ("" = no
    #: site wired; the strategy then degenerates to cold-passive).
    dr_node: str = ""
    #: Log-replay DR: pair silence before the remote site activates.
    dr_activation_timeout: float = 5_000.0

    # Recovery rules by component name; ``default_rule`` covers the rest.
    recovery_rules: Dict[str, RecoveryRule] = field(default_factory=dict)
    default_rule: RecoveryRule = field(default_factory=RecoveryRule)

    def rule_for(self, component: str) -> RecoveryRule:
        """The recovery rule governing *component*."""
        return self.recovery_rules.get(component, self.default_rule)

    def with_rule(self, component: str, rule: RecoveryRule) -> "OfttConfig":
        """Copy of this config with one component's rule replaced."""
        rules = dict(self.recovery_rules)
        rules[component] = rule
        return replace_config(self, recovery_rules=rules)

    def validate(self) -> None:
        """Sanity-check relationships between the tunables."""
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if self.heartbeat_timeout <= self.heartbeat_period:
            raise ValueError("heartbeat_timeout must exceed heartbeat_period")
        if self.heartbeat_miss_threshold < 1:
            raise ValueError("heartbeat_miss_threshold must be at least 1")
        if self.peer_heartbeat_timeout <= self.peer_heartbeat_period:
            raise ValueError("peer_heartbeat_timeout must exceed peer_heartbeat_period")
        if self.checkpoint_period <= 0:
            raise ValueError("checkpoint_period must be positive")
        if self.startup_retries < 0:
            raise ValueError("startup_retries must be non-negative")
        if self.checkpoint_history < 1:
            raise ValueError("checkpoint_history must be at least 1")
        if self.msq_retry_interval <= 0:
            raise ValueError("msq_retry_interval must be positive")
        if self.msq_retry_backoff < 1.0:
            raise ValueError("msq_retry_backoff must be at least 1.0")
        if self.msq_retry_max_interval < self.msq_retry_interval:
            raise ValueError("msq_retry_max_interval must be at least msq_retry_interval")
        if self.msq_retry_jitter < 0:
            raise ValueError("msq_retry_jitter must be non-negative")
        if self.replication_strategy not in REPLICATION_STRATEGIES:
            raise ValueError(
                f"unknown replication_strategy {self.replication_strategy!r}; "
                f"valid: {', '.join(REPLICATION_STRATEGIES)}"
            )
        if self.lf_update_period <= 0:
            raise ValueError("lf_update_period must be positive")
        if self.dr_activation_timeout <= 0:
            raise ValueError("dr_activation_timeout must be positive")


def replace_config(config: OfttConfig, **changes) -> OfttConfig:
    """``dataclasses.replace`` wrapper that re-validates the result."""
    updated = replace(config, **changes)
    updated.validate()
    return updated
