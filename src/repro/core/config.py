"""OFTT configuration: timeouts, periods, recovery rules.

"How to recover from a detected failure is controlled by the recovery rule
that specifies whether to initiate a local recovery (e.g., a transient
fault), or to transfer control to the backup node (e.g., a permanent
fault).  An application that uses the OFTT can explicitly specify the
recovery rule either statically at compilation time or dynamically at
run-time" (§2.2.1).  Both are supported here: pass rules at construction
or swap them live with :meth:`OfttEngine.set_recovery_rule`.

All durations are simulated milliseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional


class RecoveryAction(enum.Enum):
    """What the engine does about a failed component."""

    LOCAL_RESTART = "local-restart"
    FAILOVER = "failover"
    IGNORE = "ignore"
    #: Rebuild this node's whole OFTT stack (engine + FTIMs + app copy).
    #: The adaptive policy's last ladder rung: only emitted by
    #: :mod:`repro.core.policy`, never by a static rule.
    REINSTALL = "reinstall"


class GiveUpPolicy(enum.Enum):
    """What a node does when startup negotiation never hears the peer.

    ``SHUTDOWN`` is the paper's original logic ("It will shut down itself
    if it does not receive the message after a time-out period"), which
    §3.2 reports caused frequent false shutdowns under NT's start-up
    non-determinism.  ``GO_PRIMARY`` is the availability-oriented
    alternative: after exhausting retries, assume the peer is absent and
    run alone.
    """

    SHUTDOWN = "shutdown"
    GO_PRIMARY = "go-primary"


#: Valid ``OfttConfig.replication_strategy`` values.  Kept as a literal
#: here (the strategy registry lives in :mod:`repro.core.strategy`,
#: which imports this module); tests pin the two lists equal.
REPLICATION_STRATEGIES = ("cold-passive", "leader-follower", "log-replay-dr")


@dataclass(frozen=True)
class RecoveryRule:
    """Per-component recovery policy."""

    #: Local restarts attempted (within the window) before escalating.
    max_local_restarts: int = 1
    #: Delay before a local restart begins.
    restart_delay: float = 100.0
    #: Failures inside this window count against ``max_local_restarts``.
    transient_window: float = 30_000.0
    #: Action once local restarts are exhausted.
    escalation: RecoveryAction = RecoveryAction.FAILOVER

    @staticmethod
    def always_failover() -> "RecoveryRule":
        """Treat every failure as permanent."""
        return RecoveryRule(max_local_restarts=0)

    @staticmethod
    def local_only(max_restarts: int = 1_000_000) -> "RecoveryRule":
        """Never fail over; keep restarting locally."""
        return RecoveryRule(max_local_restarts=max_restarts, escalation=RecoveryAction.IGNORE)


@dataclass
class OfttConfig:
    """Tunables for one OFTT deployment (shared by both pair nodes)."""

    # Failure detection (§2.2.1: heartbeats with a pre-specified timeout).
    heartbeat_period: float = 100.0
    heartbeat_timeout: float = 500.0
    #: Consecutive sweeps past the timeout before a component (or the
    #: peer) is declared failed.  1 = the paper's behaviour; higher
    #: values desensitise the detector (see repro.core.heartbeat).
    heartbeat_miss_threshold: int = 1
    #: Also catch component death via OS process-exit hooks (faster than
    #: the heartbeat timeout; disable to measure pure heartbeat latency).
    use_exit_hooks: bool = True

    # Checkpointing (§2.2.2).
    checkpoint_period: float = 1_000.0
    #: Network timeout waiting for the peer's checkpoint acknowledgement.
    checkpoint_ack_timeout: float = 1_000.0
    #: Checkpoints kept in each store (latest is what recovery uses).
    checkpoint_history: int = 8

    # Startup negotiation (§3.2).
    startup_wait: float = 1_000.0
    startup_retries: int = 5
    give_up_policy: GiveUpPolicy = GiveUpPolicy.GO_PRIMARY

    # Peer monitoring.
    peer_heartbeat_period: float = 100.0
    peer_heartbeat_timeout: float = 500.0

    # Status reporting (§2.2.1 / §2.2.4).
    status_report_period: float = 1_000.0

    # MSMQ store-and-forward retry (§2.2.3 diverter redelivery).  The
    # retry interval after attempt *n* is
    # ``min(msq_retry_interval * msq_retry_backoff**(n-1), msq_retry_max_interval)``
    # plus uniform jitter in ``[0, msq_retry_jitter]`` drawn from the sim
    # RNG (so replay determinism holds).  backoff=1.0 reproduces the old
    # fixed cadence.
    msq_retry_interval: float = 250.0
    msq_retry_backoff: float = 2.0
    msq_retry_max_interval: float = 2_000.0
    msq_retry_jitter: float = 25.0

    # Replication strategy (see repro.core.strategy).  "cold-passive" is
    # the paper's primary/backup behaviour and the default.
    replication_strategy: str = "cold-passive"
    #: Leader-follower: period of the incremental state-update stream
    #: (overrides every FTIM's checkpoint period under that strategy).
    lf_update_period: float = 100.0
    #: Log-replay DR: node name of the disaster-recovery site ("" = no
    #: site wired; the strategy then degenerates to cold-passive).
    dr_node: str = ""
    #: Log-replay DR: pair silence before the remote site activates.
    dr_activation_timeout: float = 5_000.0

    # Recovery rules by component name; ``default_rule`` covers the rest.
    recovery_rules: Dict[str, RecoveryRule] = field(default_factory=dict)
    default_rule: RecoveryRule = field(default_factory=RecoveryRule)

    #: Ring-buffer capacity for recovery/policy decision logs.  Soak
    #: campaigns run for hours of simulated time; an unbounded decision
    #: list grows without limit, so both :class:`RecoveryManager` and the
    #: adaptive policy keep only the newest ``decision_log_limit`` entries.
    decision_log_limit: int = 256

    # Adaptive policy layer (repro.core.policy).  Off by default: with
    # ``adaptive_policy`` False the engine constructs no policy object and
    # every trace/wire byte is identical to the pre-policy engine (the
    # replay gate pins this).
    adaptive_policy: bool = False
    #: Restart-governance: exponential backoff factor applied to the
    #: rule's ``restart_delay`` per consecutive local restart (attempt n
    #: waits ``restart_delay * backoff**n``, capped below).
    policy_cooldown_backoff: float = 2.0
    #: Cap on the backed-off restart delay.
    policy_cooldown_max: float = 5_000.0
    #: Thrash detector: this many failures of one component inside
    #: ``policy_thrash_window`` is a crash-loop — stop burning local
    #: restarts and escalate immediately.
    policy_thrash_threshold: int = 2
    policy_thrash_window: float = 1_500.0
    #: A component stable this long has its failure history, backoff and
    #: escalation-ladder position cleared.
    policy_stability_window: float = 2_500.0
    #: Classifier: evidence window for failure/anomaly event counting.
    policy_anomaly_window: float = 3_000.0
    #: Classifier: component failures inside the anomaly window that mark
    #: the regime transient-crashy.
    policy_crashy_threshold: int = 2
    #: Classifier: a peer-heartbeat inter-arrival gap above this multiple
    #: of ``peer_heartbeat_period`` is a latency-skew anomaly (gray
    #: evidence).
    policy_gray_gap_factor: float = 3.0
    #: Detector tuning applied while gray evidence is live: the peer
    #: watch tolerates this many consecutive missed sweeps (instead of
    #: ``heartbeat_miss_threshold``) before declaring peer loss.
    policy_gray_miss_tolerance: int = 4
    #: Detector tuning applied while crashy evidence is live: component
    #: watch timeouts are scaled by this factor (<1 tightens detection of
    #: hangs; component heartbeats are same-node calls, so tightening
    #: carries no network false-positive risk).
    policy_tighten_scale: float = 0.5
    #: Escalation gating: a failover is deferred to a local restart when
    #: the peer has been silent longer than this multiple of
    #: ``peer_heartbeat_period`` (handing off toward a possibly
    #: unreachable peer risks a demote-into-partition outage).
    policy_peer_stale_factor: float = 2.0
    #: Pillar 2: allow the backup to advise the primary to switch over
    #: when the classifier labels the primary's traffic gray.
    policy_proactive_failover: bool = True
    #: Pillar 3: allow runtime replication-strategy switching.
    policy_switch_strategies: bool = True
    #: Minimum time between strategy switches on one engine (anti-flap
    #: dwell; the chaos flapping monitor enforces a looser bound).
    policy_switch_dwell: float = 8_000.0

    def rule_for(self, component: str) -> RecoveryRule:
        """The recovery rule governing *component*."""
        return self.recovery_rules.get(component, self.default_rule)

    def with_rule(self, component: str, rule: RecoveryRule) -> "OfttConfig":
        """Copy of this config with one component's rule replaced."""
        rules = dict(self.recovery_rules)
        rules[component] = rule
        return replace_config(self, recovery_rules=rules)

    def validate(self) -> None:
        """Sanity-check relationships between the tunables."""
        if self.heartbeat_period <= 0:
            raise ValueError("heartbeat_period must be positive")
        if self.heartbeat_timeout <= self.heartbeat_period:
            raise ValueError("heartbeat_timeout must exceed heartbeat_period")
        if self.heartbeat_miss_threshold < 1:
            raise ValueError("heartbeat_miss_threshold must be at least 1")
        if self.peer_heartbeat_timeout <= self.peer_heartbeat_period:
            raise ValueError("peer_heartbeat_timeout must exceed peer_heartbeat_period")
        if self.checkpoint_period <= 0:
            raise ValueError("checkpoint_period must be positive")
        if self.startup_retries < 0:
            raise ValueError("startup_retries must be non-negative")
        if self.checkpoint_history < 1:
            raise ValueError("checkpoint_history must be at least 1")
        if self.msq_retry_interval <= 0:
            raise ValueError("msq_retry_interval must be positive")
        if self.msq_retry_backoff < 1.0:
            raise ValueError("msq_retry_backoff must be at least 1.0")
        if self.msq_retry_max_interval < self.msq_retry_interval:
            raise ValueError("msq_retry_max_interval must be at least msq_retry_interval")
        if self.msq_retry_jitter < 0:
            raise ValueError("msq_retry_jitter must be non-negative")
        if self.replication_strategy not in REPLICATION_STRATEGIES:
            raise ValueError(
                f"unknown replication_strategy {self.replication_strategy!r}; "
                f"valid: {', '.join(REPLICATION_STRATEGIES)}"
            )
        if self.lf_update_period <= 0:
            raise ValueError("lf_update_period must be positive")
        if self.dr_activation_timeout <= 0:
            raise ValueError("dr_activation_timeout must be positive")
        if self.decision_log_limit < 1:
            raise ValueError("decision_log_limit must be at least 1")
        if self.policy_cooldown_backoff < 1.0:
            raise ValueError("policy_cooldown_backoff must be at least 1.0")
        if self.policy_cooldown_max <= 0:
            raise ValueError("policy_cooldown_max must be positive")
        if self.policy_thrash_threshold < 2:
            raise ValueError("policy_thrash_threshold must be at least 2")
        if self.policy_thrash_window <= 0:
            raise ValueError("policy_thrash_window must be positive")
        if self.policy_stability_window <= 0:
            raise ValueError("policy_stability_window must be positive")
        if self.policy_anomaly_window <= 0:
            raise ValueError("policy_anomaly_window must be positive")
        if self.policy_crashy_threshold < 1:
            raise ValueError("policy_crashy_threshold must be at least 1")
        if self.policy_gray_gap_factor <= 1.0:
            raise ValueError("policy_gray_gap_factor must exceed 1.0")
        if self.policy_gray_miss_tolerance < 1:
            raise ValueError("policy_gray_miss_tolerance must be at least 1")
        if not 0.0 < self.policy_tighten_scale <= 1.0:
            raise ValueError("policy_tighten_scale must be in (0, 1]")
        if self.policy_peer_stale_factor <= 0:
            raise ValueError("policy_peer_stale_factor must be positive")
        if self.policy_switch_dwell <= 0:
            raise ValueError("policy_switch_dwell must be positive")


def replace_config(config: OfttConfig, **changes) -> OfttConfig:
    """``dataclasses.replace`` wrapper that re-validates the result."""
    updated = replace(config, **changes)
    updated.validate()
    return updated
