"""Planted LIFE005: rearm overwrites a live handle without cancelling.

stop() does release the stored handle, so LIFE001 stays quiet — the
defect is only that re-arming outside the timer's own callback drops
the previous (still scheduled) handle on the floor.
"""


class Watchdog:
    def __init__(self, kernel):
        self.kernel = kernel
        self.period = 250.0
        self._timer = None
        self.fired = 0

    def rearm(self):
        self._timer = self.kernel.schedule(self.period, self._expired)  # expect: LIFE005

    def stop(self):
        if self._timer is not None:
            self.kernel.cancel(self._timer)
            self._timer = None

    def _expired(self):
        self.fired += 1
