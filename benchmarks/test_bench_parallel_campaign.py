"""Chaos campaign on the persistent worker pool: speedup attribution.

The parallel executor promises two things: the campaign report is
byte-identical at any ``--jobs``, and the worker pool is spawned once
and reused, so interpreter startup is a one-time cost of the process
rather than a per-campaign tax.  This harness measures all three parts
separately — serial baseline, one-time spawn, warmed parallel run — so
the recorded speedup is honest about where the time went (on a one-core
host the pool cannot beat serial; the bench then documents the overhead
instead of hiding it).
"""

from __future__ import annotations

import time

from repro.chaos.cli import campaign
from repro.chaos.report import render_json
from repro.perf.executor import shutdown_pool, warm_pool

from benchmarks.conftest import print_block

_SEEDS, _SCHEDULES = 3, 4
_JOBS = 4


def run_attributed_campaign():
    shutdown_pool()  # measure a genuine cold spawn, not a leftover pool
    start = time.perf_counter()
    serial = campaign(_SEEDS, _SCHEDULES, 0, jobs=1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    workers = warm_pool(_JOBS)
    spawn_s = time.perf_counter() - start

    # First dispatch: workers import the repro package (the task fn is
    # pickled by reference).  One-time cost of the persistent pool.
    start = time.perf_counter()
    first = campaign(_SEEDS, _SCHEDULES, 0, jobs=_JOBS)
    first_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = campaign(_SEEDS, _SCHEDULES, 0, jobs=_JOBS)
    parallel_s = time.perf_counter() - start

    serial_json = render_json(serial)
    return {
        "runs": _SEEDS * _SCHEDULES,
        "workers": workers,
        "byte_identical": serial_json == render_json(first)
        and serial_json == render_json(parallel),
        "serial_wall_s": round(serial_s, 4),
        "pool_spawn_s": round(spawn_s, 4),
        "first_dispatch_wall_s": round(first_s, 4),
        "warm_parallel_wall_s": round(parallel_s, 4),
        "warm_speedup": round(serial_s / parallel_s, 2) if parallel_s > 0 else 0.0,
    }


def test_bench_parallel_campaign(benchmark):
    result = benchmark.pedantic(run_attributed_campaign, rounds=1, iterations=1)
    print_block("Persistent pool: chaos campaign serial vs jobs=4 (spawn attributed)", result)
    assert result["byte_identical"]
    assert result["workers"] == _JOBS
    # Warmed pool must be within noise of serial even on a one-core
    # host; real speedup only arrives with real cores.
    assert result["warm_speedup"] > 0.5
