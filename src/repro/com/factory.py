"""COM class factories.

A :class:`ClassFactory` wraps a Python callable that produces instances of
a coclass.  Factories are registered with the per-node
:class:`~repro.com.runtime.ComRuntime` under a CLSID, which also records
the registration in the node's NT registry (the way ``regsvr32`` would).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.com.guids import GUID
from repro.com.hresult import CLASS_E_CLASSNOTAVAILABLE
from repro.com.interfaces import declare_interface
from repro.com.object import ComObject
from repro.errors import ComError

ICLASS_FACTORY = declare_interface("IClassFactory", ("CreateInstance", "LockServer"))


class ClassFactory(ComObject):
    """Creates instances of one coclass."""

    IMPLEMENTS = (ICLASS_FACTORY,)

    def __init__(self, clsid: GUID, producer: Callable[..., ComObject], server_name: str = "") -> None:
        super().__init__()
        self.clsid = clsid
        self.producer = producer
        self.server_name = server_name
        self.locked = False
        self.instances_created = 0

    def CreateInstance(self, *args: Any, **kwargs: Any) -> ComObject:
        """Produce a new instance (IClassFactory::CreateInstance)."""
        if self.destroyed:
            raise ComError(CLASS_E_CLASSNOTAVAILABLE, f"factory for {self.clsid} destroyed")
        instance = self.producer(*args, **kwargs)
        if not isinstance(instance, ComObject):
            raise ComError(CLASS_E_CLASSNOTAVAILABLE, f"producer for {self.clsid} returned non-COM object")
        self.instances_created += 1
        return instance

    def LockServer(self, lock: bool) -> None:
        """Pin the hosting server in memory (IClassFactory::LockServer)."""
        self.locked = bool(lock)

    def __repr__(self) -> str:
        return f"ClassFactory({self.server_name or self.clsid}, created={self.instances_created})"
