"""Measurement helpers shared by tests and benchmarks.

Everything works off the structured :class:`~repro.simnet.trace.TraceLog`
the whole stack emits into, plus direct sampling of pair state, so the
numbers reported by EXPERIMENTS.md come from observable behaviour, not
from the components' own claims.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simnet.trace import TraceLog


@dataclass(frozen=True)
class FailoverTiming:
    """Decomposition of one failover, extracted from the trace."""

    fault_at: float
    detected_at: Optional[float]
    promoted_at: Optional[float]

    @property
    def detection_latency(self) -> Optional[float]:
        """Fault injection to peer-loss / failure declaration."""
        if self.detected_at is None:
            return None
        return self.detected_at - self.fault_at

    @property
    def failover_latency(self) -> Optional[float]:
        """Fault injection to the backup's promotion."""
        if self.promoted_at is None:
            return None
        return self.promoted_at - self.fault_at


def failover_timing(trace: TraceLog, fault_at: float, promoting_node: str) -> FailoverTiming:
    """Extract detection/promotion times for a fault injected at *fault_at*."""
    detected = trace.first(category="engine", component=promoting_node, event="peer-lost", since=fault_at)
    if detected is None:
        detected = trace.first(
            category="engine", component=promoting_node, event="heartbeat-timeout", since=fault_at
        )
    promoted = trace.first(category="engine", component=promoting_node, event="takeover", since=fault_at)
    return FailoverTiming(
        fault_at=fault_at,
        detected_at=detected.time if detected is not None else None,
        promoted_at=promoted.time if promoted is not None else None,
    )


def count_events(trace: TraceLog, category: str, event: str, since: float = 0.0) -> int:
    """How many matching records the trace holds."""
    return trace.count(category=category, event=event, since=since)


def histogram_distance(a: Dict[int, int], b: Dict[int, int]) -> int:
    """L1 distance between two busy-line histograms (events of difference)."""
    keys = set(a) | set(b)
    return sum(abs(a.get(k, 0) - b.get(k, 0)) for k in keys)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """min/mean/p50/p95/max summary of a sample."""
    if not values:
        return {"n": 0, "min": math.nan, "mean": math.nan, "p50": math.nan, "p95": math.nan, "max": math.nan}
    ordered = sorted(values)

    def percentile(p: float) -> float:
        index = min(len(ordered) - 1, max(0, int(round(p * (len(ordered) - 1)))))
        return ordered[index]

    return {
        "n": len(ordered),
        "min": ordered[0],
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(0.50),
        "p95": percentile(0.95),
        "max": ordered[-1],
    }


class AvailabilitySampler:
    """Samples whether the pair is delivering service over time.

    Drive with :meth:`sample` at a fixed period; at the end,
    :meth:`availability` is the fraction of samples in which some node was
    primary with its application running.
    """

    def __init__(self) -> None:
        self.samples: List[Tuple[float, bool]] = []

    def sample(self, time: float, up: bool) -> None:
        """Record one observation."""
        self.samples.append((time, up))

    @property
    def availability(self) -> float:
        """Fraction of samples with service up (1.0 when no samples)."""
        if not self.samples:
            return 1.0
        return sum(1 for _t, up in self.samples if up) / len(self.samples)

    def downtime_windows(self) -> List[Tuple[float, float]]:
        """(start, end) intervals during which service was down."""
        windows: List[Tuple[float, float]] = []
        start: Optional[float] = None
        for time, up in self.samples:
            if not up and start is None:
                start = time
            elif up and start is not None:
                windows.append((start, time))
                start = None
        if start is not None:
            windows.append((start, self.samples[-1][0]))
        return windows

    @property
    def total_downtime(self) -> float:
        """Sum of downtime window lengths."""
        return sum(end - start for start, end in self.downtime_windows())
