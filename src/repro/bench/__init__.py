"""repro.bench: the OFTT benchmark harness (``oftt-bench``).

Micro benches time the sim hot paths (kernel event dispatch, trace
emission and fingerprinting, checkpoint round-trips); macro benches time
the end-to-end workloads the toolkit actually runs (a chaos campaign
serial vs ``--jobs N`` with a byte-equality check, the §4 demo-campaign
replay subject).  Reports follow the ``repro.bench/v1`` contract:
sorted-key JSON whose *deterministic view* (everything except measured
wall times and host facts) is byte-stable across runs and machines.
"""

from repro.bench.benches import run_benches
from repro.bench.report import SCHEMA, build_report, deterministic_view, next_bench_path, render_json

__all__ = [
    "SCHEMA",
    "build_report",
    "deterministic_view",
    "next_bench_path",
    "render_json",
    "run_benches",
]
