"""Synthetic stateful application for checkpoint experiments.

Carries a configurable amount of state split between *hot* variables
(mutated every tick) and *cold* bulk payload (written once), so the X1
experiment can compare full, selective, and incremental checkpointing on
the same workload: selective captures only what the developer designated,
incremental captures only what changed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.core.api import OfttApi
from repro.core.appdriver import OfttApplication
from repro.nt.memory import copy_variables
from repro.nt.process import NTProcess
from repro.simnet.events import Timeout


class SyntheticStateApp(OfttApplication):
    """An app with ``cold_kb`` of static payload and a hot counter set."""

    name = "synthetic"

    def __init__(
        self,
        cold_kb: int = 64,
        hot_vars: int = 8,
        tick_period: float = 100.0,
        mode: str = "full",
        checkpoint_period: Optional[float] = None,
        inbox_queue: Optional[str] = None,
    ) -> None:
        """
        Parameters
        ----------
        mode:
            ``"full"`` — level-1 API, whole address space each period;
            ``"selective"`` — ``OFTTSelSave`` on the hot variables;
            ``"incremental"`` — full designation but delta encoding.
        inbox_queue:
            Name of a local MSMQ queue to consume workload messages from
            (the diverter inbox).  Each applied message updates the
            ``applied``/``last_n`` counters in checkpointed state via
            :meth:`apply_message` — the same function the DR site uses
            for log replay — so message-driven state survives failovers.
            None (the default) keeps the app purely timer-driven.
        """
        super().__init__()
        if mode not in ("full", "selective", "incremental"):
            raise ValueError(f"unknown mode {mode!r}")
        self.cold_kb = cold_kb
        self.hot_vars = hot_vars
        self.tick_period = tick_period
        self.mode = mode
        self.checkpoint_period = checkpoint_period
        self.inbox_queue = inbox_queue
        self.api: Optional[OfttApi] = None

    def launch(self, image: Optional[Dict[str, Any]]) -> NTProcess:
        context = self.context
        assert context is not None, "install() must run before launch()"
        process = context.system.create_process(self.name)
        self.process = process
        space = process.address_space
        # Deep copy so live writes can never reach back into the stored
        # checkpoint image (values may be mutable containers).
        restored = copy_variables(image.get("globals", {})) if image else {}

        # Cold payload: 1 KiB strings, written once.
        for block in range(self.cold_kb):
            key = f"cold_{block:04d}"
            space.write(key, restored.get(key, "x" * 1024))
        for index in range(self.hot_vars):
            key = f"hot_{index:02d}"
            space.write(key, restored.get(key, 0))
        space.write("ticks", restored.get("ticks", 0))

        def main_body(_thread):
            def loop():
                while True:
                    yield Timeout(self.tick_period)
                    ticks = space.read("ticks") + 1
                    space.write("ticks", ticks)
                    for index in range(self.hot_vars):
                        key = f"hot_{index:02d}"
                        space.write(key, space.read(key) + 1)

            return loop()

        process.create_thread("main", body=main_body, dynamic=False)
        process.start()

        if self.inbox_queue is not None:
            space.write("applied", restored.get("applied", 0))
            space.write("last_n", restored.get("last_n", 0))
            queue = context.qmgr.create_queue(self.inbox_queue, journal=True)

            def on_workload(qmsg, queue=queue, space=space, process=process):
                if not process.alive:
                    # This copy died with messages still arriving (crash
                    # faults race queue delivery); stop consuming so the
                    # next launch re-subscribes against live state.
                    queue.unsubscribe()
                    return
                state = {"applied": space.read("applied"), "last_n": space.read("last_n")}
                if self.apply_message(state, qmsg.body):
                    space.write("applied", state["applied"])
                    space.write("last_n", state["last_n"])

            # Single-subscriber slot: a relaunch's subscribe replaces this
            # one, and the dead-copy guard inside on_workload unsubscribes
            # itself — no static teardown path to point the pass at.
            queue.subscribe(on_workload)  # oftt-lint: ok[leaked-subscription]

        api = OfttApi(context, self.name, process)
        api.OFTTInitialize(stateful=True, checkpoint_period=self.checkpoint_period)
        if self.mode == "selective":
            hot_names = [f"hot_{i:02d}" for i in range(self.hot_vars)] + ["ticks"]
            api.OFTTSelSave("globals", hot_names)
        elif self.mode == "incremental":
            api.ftim.incremental = True
        self.api = api
        self.launch_count += 1
        return process

    @staticmethod
    def apply_message(state: Dict[str, Any], body: Any) -> bool:
        """Apply one workload message to *state*; True if it changed.

        *state* is the ``globals`` region dict (live or a reconstructed
        checkpoint image).  Messages carry ``{"op": "tick", "n": N}``
        with N strictly increasing per sender; anything at or below
        ``last_n`` is a duplicate or stale redelivery and is skipped —
        which is exactly the dedup rule DR log replay needs to avoid
        double-applying messages the checkpoint already reflects.
        """
        if not isinstance(body, dict) or body.get("op") != "tick":
            return False
        n = body.get("n")
        if not isinstance(n, int) or n <= state.get("last_n", 0):
            return False
        state["applied"] = state.get("applied", 0) + 1
        state["last_n"] = n
        return True

    def ticks(self) -> int:
        """Progress counter (0 when not running)."""
        if self.process is None or not self.process.alive:
            return 0
        return self.process.address_space.read("ticks")

    def applied(self) -> int:
        """Workload messages applied (0 when not running or timer-only)."""
        if self.process is None or not self.process.alive or self.inbox_queue is None:
            return 0
        return self.process.address_space.read("applied")

    def last_n(self) -> int:
        """Highest applied workload sequence (0 when not running)."""
        if self.process is None or not self.process.alive or self.inbox_queue is None:
            return 0
        return self.process.address_space.read("last_n")
