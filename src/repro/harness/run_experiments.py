"""Run every experiment in the DESIGN.md index and print its table.

This is how EXPERIMENTS.md's "measured" columns are produced::

    python -m repro.harness.run_experiments            # everything
    python -m repro.harness.run_experiments X1 X3      # a subset

``--replay-check`` runs each selected experiment **twice** and compares
the canonicalized result payloads — the experiment-level counterpart of
``oftt-replay``'s trace-level diff.  A mismatch means the experiment's
published numbers are not reproducible from its seed::

    python -m repro.harness.run_experiments --replay-check X2 X5

``--jobs N`` fans independent experiments out over a process pool;
tables are printed in the requested order either way, so the output is
byte-identical for any worker count::

    python -m repro.harness.run_experiments --jobs 4
"""

from __future__ import annotations

import sys

# oftt-lint: file-ok[ambient-io] -- the experiment runner is the host-side CLI.
from typing import Any, Callable, Dict, List, Tuple

from repro.harness import experiments as E
from repro.harness.reporting import format_dict, format_table
from repro.perf.executor import parallel_map
from repro.simnet.trace import canonical_value

# id -> (title, runner)
EXPERIMENTS: Dict[str, Tuple[str, Callable[[], Any]]] = {
    "F1": ("F1a/F1b: reference configurations under node failure", lambda: E.exp_reference_configs(seed=3)),
    "F2": ("F2: Figure 2 architecture — live component counters", lambda: E.exp_architecture(seed=7)),
    "F3": ("F3/T1: Table 1 software configuration, verified live", lambda: E.exp_demo_config(seed=9)),
    "D": ("D-a..d: §4 failure demonstrations (Figure 3 testbed)", lambda: E.exp_failover_demos(seed=5)),
    "X1": ("X1: checkpoint bytes by capture mode and state size", lambda: E.exp_checkpoint_cost(seed=11)),
    "X2": ("X2: hang-detection latency vs heartbeat period/timeout", lambda: E.exp_detection_latency(seed=13)),
    "X3": ("X3: false-shutdown rate vs startup retry budget", lambda: E.exp_startup(seeds=list(range(25)))),
    "X4": ("X4: events lost across switchover, diverter vs naive", lambda: E.exp_diverter(seeds=[0, 1, 2, 3, 4])),
    "X5": ("X5: transient app crash under each recovery rule", lambda: E.exp_recovery_rules(seed=17)),
    "X6": ("X6: time for a client to learn its server died", lambda: E.exp_dcom(seed=19)),
    "X7": ("X7: integration level vs checkpoint cost and staleness", lambda: E.exp_api_levels(seed=23)),
    "A1": ("A1: NIC failure with single vs dual Ethernet", lambda: E.exp_ablation_dual_lan(seed=51)),
    "A2": ("A2: false takeovers vs heartbeat timeout on lossy links", lambda: E.exp_ablation_heartbeat_loss(seed=53)),
    "A3": ("A3: checkpoint period vs traffic vs staleness bound", lambda: E.exp_ablation_checkpoint_period(seed=55)),
    "BL": ("BL: monitoring blackout across a station power-off (F1a)", lambda: E.exp_scada_blackout(seed=9)),
}


def run_experiment_task(experiment_id: str) -> Any:
    """Executor entry point: run one experiment by id.

    Module-level (pickled by reference) so ``--jobs`` workers can resolve
    the id against their own freshly imported registry — the lambdas in
    ``EXPERIMENTS`` never cross a process boundary.
    """
    _, runner = EXPERIMENTS[experiment_id]
    return runner()


def run(ids: List[str], jobs: int = 1) -> None:
    """Run the selected experiments, printing each result table.

    Results are printed in the requested id order after all runs finish,
    so the output bytes do not depend on *jobs*.
    """
    results = parallel_map(run_experiment_task, ids, jobs=jobs)
    for experiment_id, result in zip(ids, results):
        title, _ = EXPERIMENTS[experiment_id]
        print()
        if isinstance(result, dict):
            print(format_dict(title, result))
        else:
            print(format_table(list(result[0].keys()), [list(row.values()) for row in result], title=title))


def replay_check_experiment(experiment_id: str) -> Tuple[bool, Any, Any]:
    """Run one experiment twice; return (match, first, second) canonical payloads.

    Canonicalization reuses the trace policy (:func:`canonical_value`):
    sorted dict keys and quantized floats, so a reorder or a sub-ULP
    float wobble does not count as a divergence but any real numeric or
    structural change does.
    """
    _, runner = EXPERIMENTS[experiment_id]
    first = canonical_value(runner())
    second = canonical_value(runner())
    return first == second, first, second


def replay_check(ids: List[str], jobs: int = 1) -> int:
    """Run each experiment twice and report reproducibility; exit-style int."""
    failures = 0
    checks = parallel_map(replay_check_experiment, ids, jobs=jobs)
    for experiment_id, (match, first, second) in zip(ids, checks):
        if match:
            print(f"[ok] {experiment_id}: two runs agree")
            continue
        failures += 1
        print(f"[DIVERGED] {experiment_id}: runs disagree")
        print(f"  run 1: {first!r}")
        print(f"  run 2: {second!r}")
    print(f"{len(ids)} experiment(s): {len(ids) - failures} ok, {failures} diverged")
    return 1 if failures else 0


def main(argv: List[str]) -> int:
    check_mode = "--replay-check" in argv
    args = [arg for arg in argv if arg != "--replay-check"]
    jobs = 1
    cleaned: List[str] = []
    index = 0
    while index < len(args):
        arg = args[index]
        if arg == "--jobs" or arg.startswith("--jobs="):
            value = arg.partition("=")[2]
            if not value:
                index += 1
                if index >= len(args):
                    print("--jobs requires a value")
                    return 2
                value = args[index]
            try:
                jobs = int(value)
            except ValueError:
                print(f"bad --jobs value {value!r}")
                return 2
        else:
            cleaned.append(arg)
        index += 1
    requested = cleaned or list(EXPERIMENTS)
    unknown = [experiment_id for experiment_id in requested if experiment_id not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; available: {sorted(EXPERIMENTS)}")
        return 2
    if check_mode:
        return replay_check(requested, jobs=jobs)
    run(requested, jobs=jobs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
