# Developer entry points.  `make verify` is the CI gate: tier-1 tests,
# the static-analysis toolkit (see ANALYSIS.md), the dynamic
# replay-divergence gate (see REPLAY.md), the chaos smoke campaign
# (see CHAOS.md), and the parallel-equivalence gate (see PERF.md).

PY := PYTHONPATH=src python

.PHONY: test lint lint-tests lint-json replay replay-json chaos chaos-selftest perf-gate bench verify

test:
	$(PY) -m pytest -x -q

lint:
	$(PY) -m repro.analysis src/repro --strict

# Tests are linted with the per-directory profile: the ambient DET rules
# (unseeded randomness, entropy, environment reads) are relaxed because
# property-style tests and CLI fixtures use them deliberately.
lint-tests:
	$(PY) -m repro.analysis tests --strict --relax tests=DET002,DET003,DET006

lint-json:
	$(PY) -m repro.analysis src/repro --strict --format json

replay:
	$(PY) -m repro.replay --gate

replay-json:
	$(PY) -m repro.replay --gate --format json

# The smoke campaign must be violation-free (exit 0), and the sabotaged
# self-test must be caught by the monitors (exit 1) — both are gates.
chaos:
	$(PY) -m repro.chaos --smoke

chaos-selftest:
	@$(PY) -m repro.chaos --self-test > /dev/null; \
	status=$$?; \
	if [ $$status -eq 1 ]; then \
		echo "chaos self-test: monitors caught the sabotage (exit $$status, as expected)"; \
	else \
		echo "chaos self-test: expected exit 1, got $$status" >&2; exit 1; \
	fi

# The executor contract (see PERF.md): a campaign run at --jobs 2 must
# render byte-identically to the serial run.
perf-gate:
	$(PY) -m repro.perf check-chaos --seeds 2 --schedules 2 --jobs 2

# Quick-profile benchmark; saves the next numbered BENCH_<n>.json here.
bench:
	$(PY) -m repro.bench --profile quick --jobs 2 --save

verify: test lint lint-tests replay chaos chaos-selftest perf-gate
