"""Fault schedules: the unit of chaos a run executes and the minimizer shrinks.

A schedule is a seedable, serializable list of :class:`FaultEntry`
records — ``(at, kind, params)`` — rather than live
:class:`~repro.faults.faultlib.Fault` objects, so the same schedule can
be re-materialized against a fresh scenario for deterministic re-runs
(delta debugging) and round-tripped through the ``repro.chaos/v1``
report.

:class:`ScheduleGenerator` samples schedules from the fault catalogue:
every destructive entry is paired with its repair (reboot, heal, reset)
a bounded delay later, so a full schedule always returns the testbed to
a recoverable configuration — any invariant still violated after that is
a real finding, not an artifact of never repairing anything.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

from repro.errors import FaultInjectionError
from repro.faults import faultlib

#: kind -> builder(params) -> Fault.  Params are JSON-safe dicts.
FAULT_BUILDERS: Dict[str, Callable[[Dict[str, Any]], faultlib.Fault]] = {
    "node-failure": lambda p: faultlib.NodeFailure(p["node"]),
    "bluescreen": lambda p: faultlib.BlueScreen(p["node"]),
    "app-crash": lambda p: faultlib.AppCrash(p["node"], p["process"]),
    "sticky-app-crash": lambda p: faultlib.StickyAppCrash(
        p["node"], p["process"], duration=p.get("duration", 3_000.0)
    ),
    "app-hang": lambda p: faultlib.AppHang(p["node"], p["process"]),
    "middleware-crash": lambda p: faultlib.MiddlewareCrash(p["node"]),
    "node-reboot": lambda p: faultlib.NodeReboot(p["node"]),
    "reinstall-middleware": lambda p: faultlib.ReinstallMiddleware(p["node"]),
    "partition": lambda p: faultlib.NetworkPartition(p["side_a"], p["side_b"]),
    "asym-partition": lambda p: faultlib.AsymmetricPartition(p["sources"], p["dests"]),
    "heal-network": lambda p: faultlib.HealNetwork(),
    "link-down": lambda p: faultlib.LinkDown(p["link"]),
    "message-corruption": lambda p: faultlib.MessageCorruption(p["link"], p["probability"]),
    "message-duplication": lambda p: faultlib.MessageDuplication(p["link"], p["probability"]),
    "gray-node": lambda p: faultlib.GrayNode(p["node"], p["delay"]),
    "clock-skew": lambda p: faultlib.ClockSkew(p["node"], p["scale"]),
    "crash-during-checkpoint": lambda p: faultlib.CrashDuringCheckpoint(p["node"]),
}


@dataclass(frozen=True)
class FaultEntry:
    """One scheduled injection: *kind* with *params*, applied at *at* ms."""

    at: float
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> faultlib.Fault:
        """Materialize the live fault object for this entry."""
        builder = FAULT_BUILDERS.get(self.kind)
        if builder is None:
            raise FaultInjectionError(f"unknown fault kind {self.kind!r}")
        return builder(self.params)

    def as_wire(self) -> Dict[str, Any]:
        """JSON-safe canonical form."""
        return {"at": round(self.at, 3), "kind": self.kind, "params": dict(sorted(self.params.items()))}

    @staticmethod
    def from_wire(data: Dict[str, Any]) -> "FaultEntry":
        """Inverse of :meth:`as_wire`."""
        return FaultEntry(at=float(data["at"]), kind=str(data["kind"]), params=dict(data.get("params", {})))


@dataclass
class ChaosSchedule:
    """An ordered fault sequence plus the horizon it plays out in."""

    entries: List[FaultEntry]
    horizon: float = 40_000.0

    def sorted_entries(self) -> List[FaultEntry]:
        """Entries in injection order (time, then kind for stable ties)."""
        return sorted(self.entries, key=lambda e: (e.at, e.kind))

    def subset(self, keep: List[int]) -> "ChaosSchedule":
        """Schedule containing only the entries at indices *keep*."""
        index_set = set(keep)
        return ChaosSchedule(
            entries=[e for i, e in enumerate(self.entries) if i in index_set],
            horizon=self.horizon,
        )

    def as_wire(self) -> Dict[str, Any]:
        """JSON-safe canonical form."""
        return {
            "horizon": round(self.horizon, 3),
            "entries": [entry.as_wire() for entry in self.sorted_entries()],
        }

    @staticmethod
    def from_wire(data: Dict[str, Any]) -> "ChaosSchedule":
        """Inverse of :meth:`as_wire`."""
        return ChaosSchedule(
            entries=[FaultEntry.from_wire(e) for e in data.get("entries", [])],
            horizon=float(data.get("horizon", 40_000.0)),
        )

    def __len__(self) -> int:
        return len(self.entries)


# -- drifting fault-mix campaigns --------------------------------------------------
#
# Hand-built phased schedules for the adaptive-policy experiments: the
# fault *mix* changes over the run (crash-loops, then gray noise, then a
# partition, then a persistent fault), so a policy tuned for any single
# mix is wrong for part of the run.  Every destructive motif targets
# BOTH pair nodes symmetrically — which node holds PRIMARY mid-run
# differs between the policies under comparison, and an asymmetric
# schedule would grade them on placement luck rather than policy.

#: Length of one drift phase, ms.
DRIFT_PHASE_LENGTH = 8_000.0
#: Quiet lead-in before the first phase (role negotiation + settling).
DRIFT_LEAD_IN = 2_000.0
#: Recovery tail after the last phase.
DRIFT_TAIL = 10_000.0


def _both(at: float, kind: str, nodes: List[str], params: Dict[str, Any]) -> List[FaultEntry]:
    return [FaultEntry(at, kind, {"node": node, **params}) for node in nodes]


def _drift_crashy(at: float, nodes: List[str], process: str) -> List[FaultEntry]:
    """Crash-loop regime: alternating crashes and hangs, ~1.2s apart."""
    entries: List[FaultEntry] = []
    for offset, kind in (
        (500.0, "app-crash"),
        (1_800.0, "app-hang"),
        (3_000.0, "app-crash"),
        (4_200.0, "app-hang"),
        (5_400.0, "app-crash"),
        (6_600.0, "app-hang"),
    ):
        entries.extend(_both(at + offset, kind, nodes, {"process": process}))
    return entries


def _drift_gray(at: float, nodes: List[str], process: str) -> List[FaultEntry]:
    """Gray regime: egress-delay pulses ramping to a near-timeout delay.

    The small pulses (250–300ms) produce beat-to-beat gaps of 350–400ms:
    below the default peer timeout but above an aggressively tightened
    one, and exactly the latency-skew evidence the classifier keys on.
    The final 650ms step opens a one-off ~750ms gap that trips every
    miss-threshold-1 detector — only gray-aware tolerance rides it out.
    A hang lands mid-phase so hang-detection latency is paid *during*
    the gray noise, not in a quiet lab.
    """
    entries: List[FaultEntry] = []
    for offset, delay in (
        (500.0, 250.0),
        (1_000.0, 0.0),
        (1_500.0, 300.0),
        (2_000.0, 0.0),
        (4_500.0, 300.0),
        (5_000.0, 0.0),
        (5_500.0, 650.0),
        (6_500.0, 0.0),
    ):
        entries.extend(_both(at + offset, "gray-node", nodes, {"delay": delay}))
    entries.extend(_both(at + 2_500.0, "app-hang", nodes, {"process": process}))
    return entries


def _drift_partition(at: float, nodes: List[str], process: str) -> List[FaultEntry]:
    """Partition regime: the pair splits, then the app crashes 250ms in.

    The crash lands inside the stale-heartbeat window (the peer is gone
    but its watch has not timed out yet): an escalating policy demotes
    into the void and strands the unit primary-less until peer-loss
    promotion; staleness-aware deferral restarts locally instead.  The
    heal arrives inside the split-brain monitor's grace.
    """
    entries = [
        FaultEntry(at + 500.0, "partition", {"side_a": [nodes[0]], "side_b": [nodes[1]]}),
        FaultEntry(at + 2_500.0, "heal-network", {}),
    ]
    entries.extend(_both(at + 750.0, "app-crash", nodes, {"process": process}))
    return entries


def _drift_sticky(at: float, nodes: List[str], process: str) -> List[FaultEntry]:
    """Persistent-fault regime: a crash that re-kills every relaunch.

    Staggered and non-overlapping across the two nodes, so whichever
    node holds PRIMARY gets hit and the peer is healthy when it does —
    local-restart-only policies burn the whole fault duration, while
    escalating ones move the app out from under it.
    """
    return [
        FaultEntry(at + 500.0, "sticky-app-crash", {"node": nodes[0], "process": process, "duration": 2_000.0}),
        FaultEntry(at + 4_000.0, "sticky-app-crash", {"node": nodes[1], "process": process, "duration": 2_000.0}),
    ]


_DRIFT_PHASES: Dict[str, Callable[[float, List[str], str], List[FaultEntry]]] = {
    "crashy": _drift_crashy,
    "gray": _drift_gray,
    "partition": _drift_partition,
    "sticky": _drift_sticky,
}

#: profile name -> phase sequence.  "mixed" is the drifting mix the
#: adaptive-vs-static experiments gate on.
DRIFT_PROFILES: Dict[str, List[str]] = {
    "crashy": ["crashy"],
    "gray": ["gray"],
    "partition": ["partition"],
    "sticky": ["sticky"],
    "mixed": ["crashy", "gray", "partition", "sticky"],
}

#: Fault kinds in drift schedules that directly break the running
#: application or the pair (used for latency/false-positive attribution).
DRIFT_DESTRUCTIVE_KINDS = frozenset({"app-crash", "app-hang", "sticky-app-crash", "partition"})


def drift_schedule(profile: str, nodes: List[str], process: str) -> ChaosSchedule:
    """Build the deterministic drifting-mix schedule for *profile*."""
    phases = DRIFT_PROFILES.get(profile)
    if phases is None:
        raise FaultInjectionError(f"unknown drift profile {profile!r}; available: {sorted(DRIFT_PROFILES)}")
    entries: List[FaultEntry] = []
    at = DRIFT_LEAD_IN
    for phase in phases:
        entries.extend(_DRIFT_PHASES[phase](at, list(nodes), process))
        at += DRIFT_PHASE_LENGTH
    return ChaosSchedule(entries=entries, horizon=at + DRIFT_TAIL)


#: Fault templates the generator samples from, with relative weights.
#: Each template emits the destructive entry plus (optionally) its
#: paired repair entry; ``node`` iterates over the pair nodes and
#: ``link`` over the LAN segments of the target scenario.
_TEMPLATES: List[Any] = [
    # (weight, name) — dispatch happens in _emit below.
    (3, "app-crash"),
    (2, "app-hang"),
    (2, "middleware-crash"),
    (2, "bluescreen"),
    (2, "node-failure"),
    (2, "partition"),
    (2, "asym-partition"),
    (2, "message-corruption"),
    (2, "message-duplication"),
    (2, "gray-node"),
    (1, "clock-skew"),
    (1, "crash-during-checkpoint"),
]


class ScheduleGenerator:
    """Samples randomized fault schedules for one testbed topology.

    All randomness comes from the seeded ``random.Random`` passed in, so
    (seed, index) fully determines each schedule.  Burst behaviour: with
    probability ``burst_prob`` the next fault lands within ``burst_gap``
    of the previous one (correlated failures); otherwise injection times
    are independent uniform draws over the fault window.
    """

    def __init__(
        self,
        nodes: List[str],
        links: List[str],
        process: str,
        rng: random.Random,
        window: float = 18_000.0,
        window_start: float = 2_000.0,
        repair_delay: float = 4_000.0,
        burst_prob: float = 0.3,
        burst_gap: float = 500.0,
        min_faults: int = 2,
        max_faults: int = 4,
    ) -> None:
        self.nodes = list(nodes)
        self.links = list(links)
        self.process = process
        self.rng = rng
        self.window = window
        self.window_start = window_start
        self.repair_delay = repair_delay
        self.burst_prob = burst_prob
        self.burst_gap = burst_gap
        self.min_faults = min_faults
        self.max_faults = max_faults

    def generate(self) -> ChaosSchedule:
        """Sample one schedule (advances the RNG)."""
        count = self.rng.randint(self.min_faults, self.max_faults)
        entries: List[FaultEntry] = []
        previous_at = self.window_start
        for _ in range(count):
            if entries and self.rng.random() < self.burst_prob:
                at = min(previous_at + self.rng.uniform(0.0, self.burst_gap), self.window_start + self.window)
            else:
                at = self.rng.uniform(self.window_start, self.window_start + self.window)
            at = round(at, 1)
            previous_at = at
            entries.extend(self._emit(at))
        # Settle budget: repairs land at most repair_delay after the last
        # fault; leave a recovery tail beyond that before the horizon.
        last = max(entry.at for entry in entries)
        horizon = round(last + self.repair_delay + 12_000.0, 1)
        return ChaosSchedule(entries=entries, horizon=horizon)

    # -- template emission -------------------------------------------------------

    def _emit(self, at: float) -> List[FaultEntry]:
        total = sum(weight for weight, _ in _TEMPLATES)
        pick = self.rng.uniform(0.0, total)
        cumulative = 0.0
        name = _TEMPLATES[-1][1]
        for weight, template in _TEMPLATES:
            cumulative += weight
            if pick <= cumulative:
                name = template
                break
        node = self.rng.choice(self.nodes)
        link = self.rng.choice(self.links)
        repair_at = round(at + self.rng.uniform(self.repair_delay / 2.0, self.repair_delay), 1)
        if name == "app-crash":
            return [FaultEntry(at, "app-crash", {"node": node, "process": self.process})]
        if name == "app-hang":
            return [FaultEntry(at, "app-hang", {"node": node, "process": self.process})]
        if name == "middleware-crash":
            return [
                FaultEntry(at, "middleware-crash", {"node": node}),
                FaultEntry(repair_at, "reinstall-middleware", {"node": node}),
            ]
        if name == "bluescreen":
            return [
                FaultEntry(at, "bluescreen", {"node": node}),
                FaultEntry(repair_at, "node-reboot", {"node": node}),
            ]
        if name == "node-failure":
            return [
                FaultEntry(at, "node-failure", {"node": node}),
                FaultEntry(repair_at, "node-reboot", {"node": node}),
            ]
        if name == "partition":
            side_a, side_b = [self.nodes[0]], [self.nodes[1]]
            return [
                FaultEntry(at, "partition", {"side_a": side_a, "side_b": side_b}),
                FaultEntry(repair_at, "heal-network", {}),
            ]
        if name == "asym-partition":
            source, dest = (self.nodes[0], self.nodes[1]) if self.rng.random() < 0.5 else (self.nodes[1], self.nodes[0])
            return [
                FaultEntry(at, "asym-partition", {"sources": [source], "dests": [dest]}),
                FaultEntry(repair_at, "heal-network", {}),
            ]
        if name == "message-corruption":
            probability = round(self.rng.uniform(0.05, 0.3), 3)
            return [
                FaultEntry(at, "message-corruption", {"link": link, "probability": probability}),
                FaultEntry(repair_at, "message-corruption", {"link": link, "probability": 0.0}),
            ]
        if name == "message-duplication":
            probability = round(self.rng.uniform(0.05, 0.3), 3)
            return [
                FaultEntry(at, "message-duplication", {"link": link, "probability": probability}),
                FaultEntry(repair_at, "message-duplication", {"link": link, "probability": 0.0}),
            ]
        if name == "gray-node":
            delay = round(self.rng.uniform(50.0, 350.0), 1)
            return [
                FaultEntry(at, "gray-node", {"node": node, "delay": delay}),
                FaultEntry(repair_at, "gray-node", {"node": node, "delay": 0.0}),
            ]
        if name == "clock-skew":
            scale = round(self.rng.uniform(1.1, 1.5), 3)
            return [
                FaultEntry(at, "clock-skew", {"node": node, "scale": scale}),
                FaultEntry(repair_at, "clock-skew", {"node": node, "scale": 1.0}),
            ]
        if name == "crash-during-checkpoint":
            return [
                FaultEntry(at, "crash-during-checkpoint", {"node": node}),
                FaultEntry(repair_at, "node-reboot", {"node": node}),
            ]
        raise FaultInjectionError(f"unknown template {name!r}")
