"""Benchmark F3/T1: the demonstration configuration.

Paper artifacts: Figure 3 ("Demonstration Configuration", three PCs on an
Ethernet) and Table 1 ("Software Configuration": the software elements on
the primary, backup, and test/interface nodes).  This harness regenerates
Table 1 from the live system and verifies every element is where the
paper puts it.
"""

from repro.harness.experiments import exp_demo_config

from benchmarks.conftest import print_rows


def test_bench_demo_config(benchmark):
    rows = benchmark.pedantic(lambda: exp_demo_config(seed=9), rounds=1, iterations=1)
    print_rows("F3/T1: Table 1 software configuration, verified live", rows)
    assert all(row["app_running"] == row["expected_app_running"] for row in rows)
    assert sorted(row["role"] for row in rows if row["node"] != "test-pc") == ["backup", "primary"]
