"""Clean twin of pure001: the task accumulates locally and returns."""

from repro.perf.executor import parallel_map


def record(value):
    totals = []
    totals.append(value)
    return totals[0]


def main(values):
    return parallel_map(record, values, jobs=2)
