"""Self-tests for suppression comments and reporter stability."""

from __future__ import annotations

import json

from repro.analysis import determinism, races
from repro.analysis.findings import Severity
from repro.analysis.report import JSON_SCHEMA, render_json, render_text, severity_counts
from repro.analysis.walker import load_sources

from tests.analysis.util import analyze, make_file, rule_ids

VIOLATION = """
import time

def stamp():
    return time.time()
"""


# -- suppression forms ---------------------------------------------------


def test_trailing_ok_suppresses_that_line():
    findings = analyze(
        """
        import time

        def stamp():
            return time.time()  # oftt-lint: ok[wall-clock]
        """,
        determinism.run,
    )
    assert findings == []


def test_standalone_ok_covers_next_line():
    findings = analyze(
        """
        import time

        def stamp():
            # oftt-lint: ok[wall-clock]
            return time.time()
        """,
        determinism.run,
    )
    assert findings == []


def test_ok_accepts_rule_id_and_bare_ok_suppresses_all():
    findings = analyze(
        """
        import time

        def stamp():
            return time.time()  # oftt-lint: ok[DET001]

        def stamp2():
            return time.time()  # oftt-lint: ok
        """,
        determinism.run,
    )
    assert findings == []


def test_ok_does_not_leak_to_other_lines_or_rules():
    findings = analyze(
        """
        import time

        def stamp():
            return time.time()  # oftt-lint: ok[unseeded-random]

        def stamp2():
            return time.time()
        """,
        determinism.run,
    )
    assert rule_ids(findings) == ["DET001", "DET001"]


def test_file_ok_suppresses_rule_file_wide_only():
    findings = analyze(
        """
        # oftt-lint: file-ok[wall-clock]
        import random
        import time

        def stamp():
            return time.time(), time.monotonic(), random.random()
        """,
        determinism.run,
    )
    assert rule_ids(findings) == ["DET002"]  # random survives, clocks do not


def test_skip_file_drops_every_finding():
    source_file = make_file(
        """
        # oftt-lint: skip-file
        import time

        def stamp():
            return time.time()
        """
    )
    assert source_file.suppressions.skip_file


def test_unknown_rule_in_suppression_is_reported():
    findings = analyze(
        """
        import time

        def stamp():
            return time.time()  # oftt-lint: ok[no-such-rule]
        """,
        determinism.run,
    )
    # GEN002 for the bad annotation AND the original DET001 still fires.
    assert sorted(rule_ids(findings)) == ["DET001", "GEN002"]


def test_misspelled_rule_in_a_skipped_file_still_surfaces(tmp_path):
    # Regression (GEN002): load_sources used to drop skip-file'd files
    # together with their own suppression errors, so a misspelled rule
    # in a standalone file-ok comment rotted silently.
    skipped = tmp_path / "skipped.py"
    skipped.write_text(
        "# oftt-lint: skip-file\n"
        "# oftt-lint: file-ok[RACE110]\n"
        "import time\n",
        encoding="utf-8",
    )
    files, findings = load_sources([str(skipped)])
    assert files == []  # still excluded from every pass
    assert rule_ids(findings) == ["GEN002"]
    assert "RACE110" in findings[0].message


def test_directive_inside_string_literal_is_inert():
    findings = analyze(
        """
        import time

        FIXTURE = "# oftt-lint: file-ok[wall-clock]"

        def stamp():
            return time.time()
        """,
        determinism.run,
    )
    assert rule_ids(findings) == ["DET001"]


# -- reporters -----------------------------------------------------------


def test_json_schema_is_stable():
    findings = analyze(VIOLATION, determinism.run)
    document = json.loads(render_json(findings, files_scanned=1, passes=["det"]))
    assert document["schema"] == JSON_SCHEMA == "repro.analysis/v1"
    assert set(document) == {"schema", "passes", "files", "counts", "findings"}
    assert document["counts"] == {"error": 1, "warning": 0, "info": 0}
    entry = document["findings"][0]
    assert set(entry) == {"rule", "slug", "severity", "pass", "path", "line", "col", "message"}
    assert entry["rule"] == "DET001"
    assert entry["slug"] == "wall-clock"
    assert entry["severity"] == "error"
    assert entry["line"] == 5


def test_text_report_format_and_summary():
    findings = analyze(VIOLATION, determinism.run)
    text = render_text(findings, files_scanned=1, passes=["det"])
    first, summary = text.splitlines()
    assert first.startswith("snippet.py:5:")
    assert "error DET001[wall-clock]" in first
    assert summary == "1 finding(s) (1 error, 0 warning, 0 info) in 1 file(s); passes: det"


def test_severity_counts_cover_warnings():
    findings = analyze(
        """
        class Pump:
            def start(self):
                self.kernel.schedule(5.0, self._a)
                self.kernel.schedule(5.0, self._b)

            def _a(self):
                self.valve = 1

            def _b(self):
                self.valve = 2
        """,
        races.run,
    )
    assert [f.severity for f in findings] == [Severity.WARNING]
    assert severity_counts(findings) == {"error": 0, "warning": 1, "info": 0}
