"""Command-line driver: ``python -m repro.analysis`` / ``oftt-lint``.

Exit-code contract (relied on by ``make verify`` and the dogfood test):

* ``0`` — no gating findings (errors; plus warnings under ``--strict``)
* ``1`` — at least one gating finding
* ``2`` — usage or internal error (bad path, unknown pass)

Examples::

    python -m repro.analysis src/repro                # all passes, text
    python -m repro.analysis src/repro --format json  # machine output
    python -m repro.analysis src examples --passes det,race --strict
    oftt-lint --list-rules
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.analysis import comcheck, determinism, races
from repro.analysis.findings import AnalysisError, Severity, all_rules
from repro.analysis.report import render_json, render_text
from repro.analysis.walker import Pass, load_sources, run_passes

#: Registered passes, in execution order.
PASSES: Dict[str, Pass] = {
    "det": determinism.run,
    "com": comcheck.run,
    "race": races.run,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oftt-lint",
        description="Determinism linter, COM contract checker, and sim race detector.",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyse (default: src/repro)")
    parser.add_argument("--passes", default="det,com,race", metavar="NAMES",
                        help="comma-separated subset of det,com,race (default: all)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--json", action="store_const", const="json", dest="format",
                        help="shorthand for --format json")
    parser.add_argument("--strict", action="store_true",
                        help="warnings gate the exit code too")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def list_rules() -> str:
    lines = []
    for entry in all_rules():
        lines.append(f"{entry.rule_id}  {entry.slug:24s} {str(entry.severity):8s} [{entry.pass_name}] {entry.summary}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(list_rules())
        return 0

    pass_names = [name.strip() for name in options.passes.split(",") if name.strip()]
    try:
        selected: List[Pass] = []
        for name in pass_names:
            if name not in PASSES:
                raise AnalysisError(f"unknown pass {name!r} (choose from {', '.join(PASSES)})")
            selected.append(PASSES[name])
        files, load_findings = load_sources(options.paths or ["src/repro"])
    except AnalysisError as exc:
        print(f"oftt-lint: {exc}", file=sys.stderr)
        return 2

    findings = run_passes(files, selected)
    findings = sorted(load_findings + findings, key=lambda f: f.sort_key())

    if options.format == "json":
        sys.stdout.write(render_json(findings, len(files), pass_names))
    else:
        print(render_text(findings, len(files), pass_names))

    gate = Severity.WARNING if options.strict else Severity.ERROR
    return 1 if any(f.severity >= gate for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
