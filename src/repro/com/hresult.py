"""HRESULT codes used by the simulated COM runtime.

Values match the real Windows SDK constants so traces read familiarly.
"""

from __future__ import annotations

S_OK = 0x0000_0000
S_FALSE = 0x0000_0001
E_FAIL = 0x8000_4005
E_POINTER = 0x8000_4003
E_NOINTERFACE = 0x8000_4002
E_OUTOFMEMORY = 0x8007_000E
REGDB_E_CLASSNOTREG = 0x8004_0154
CLASS_E_CLASSNOTAVAILABLE = 0x8004_0111
RPC_E_TIMEOUT = 0x8001_011F
RPC_E_DISCONNECTED = 0x8001_0108
RPC_E_SERVERCALL_REJECTED = 0x8001_0002
RPC_E_CALL_CANCELED = 0x8001_0002  # alias used by cancelled pending calls

_NAMES = {
    S_OK: "S_OK",
    S_FALSE: "S_FALSE",
    E_FAIL: "E_FAIL",
    E_POINTER: "E_POINTER",
    E_NOINTERFACE: "E_NOINTERFACE",
    E_OUTOFMEMORY: "E_OUTOFMEMORY",
    REGDB_E_CLASSNOTREG: "REGDB_E_CLASSNOTREG",
    CLASS_E_CLASSNOTAVAILABLE: "CLASS_E_CLASSNOTAVAILABLE",
    RPC_E_TIMEOUT: "RPC_E_TIMEOUT",
    RPC_E_DISCONNECTED: "RPC_E_DISCONNECTED",
    RPC_E_SERVERCALL_REJECTED: "RPC_E_SERVERCALL_REJECTED",
}


def succeeded(hresult: int) -> bool:
    """COM SUCCEEDED() macro: non-negative (top bit clear)."""
    return (hresult & 0x8000_0000) == 0


def failed(hresult: int) -> bool:
    """COM FAILED() macro."""
    return not succeeded(hresult)


def hresult_name(hresult: int) -> str:
    """Symbolic name if known, else hex."""
    return _NAMES.get(hresult, f"0x{hresult & 0xFFFFFFFF:08X}")
