"""Invariant monitor tests: unit checks on fakes plus end-to-end runs."""

from repro.chaos.cli import SELF_TEST_ENTRIES, SELF_TEST_HORIZON, SELF_TEST_SABOTAGE
from repro.chaos.invariants import (
    CheckpointMonotonicityMonitor,
    DiverterConservationMonitor,
    HeartbeatLivenessMonitor,
    RecoveryLatencyMonitor,
    SplitBrainMonitor,
)
from repro.chaos.runner import run_schedule
from repro.chaos.schedule import ChaosSchedule, FaultEntry
from repro.core.roles import Role
from repro.msq.manager import DEAD_LETTER_QUEUE


# ---------------------------------------------------------------------------
# Duck-typed fakes mirroring the slices of ChaosScenario monitors touch.


class FakeApp:
    def __init__(self, running=True):
        self.running = running


class FakeHeartbeat:
    def __init__(self, suspected=False):
        self.suspected = suspected

    def is_suspected(self, target):
        return self.suspected


class FakeEngine:
    def __init__(self, alive=True, role=Role.PRIMARY, apps=None, suspected=False):
        self.alive = alive
        self.role = role
        self.applications = apps if apps is not None else {"synthetic": FakeApp()}
        self.monitor = FakeHeartbeat(suspected)
        self.on_checkpoint_submit = []
        self.on_checkpoint_stored = []
        self.node_name = "alpha"


class FakePair:
    node_names = ("alpha", "beta")

    def __init__(self, engines):
        self.engines = engines

    def running_app_nodes(self):
        return [
            name
            for name, engine in self.engines.items()
            if any(app.running for app in engine.applications.values())
        ]


class FakeNetwork:
    def __init__(self, connected=True):
        self.connected = connected

    def path_ok(self, source, dest):
        return self.connected


class FakeScenario:
    def __init__(self, engines, connected=True):
        self.pair = FakePair(engines)
        self.network = FakeNetwork(connected)


def dual_primary_scenario(connected=True):
    return FakeScenario(
        {"alpha": FakeEngine(), "beta": FakeEngine()},
        connected=connected,
    )


# ---------------------------------------------------------------------------
# SplitBrainMonitor


def test_split_brain_fires_after_grace():
    monitor = SplitBrainMonitor(grace=1_000.0)
    scenario = dual_primary_scenario()
    for now in (0.0, 500.0, 1_600.0):
        monitor.on_tick(scenario, now)
    assert len(monitor.violations) == 1
    violation = monitor.violations[0]
    assert violation.invariant == "split-brain"
    assert violation.detail["primaries"] == ["alpha", "beta"]


def test_split_brain_tolerates_transient_dual_primary():
    monitor = SplitBrainMonitor(grace=1_000.0)
    scenario = dual_primary_scenario()
    monitor.on_tick(scenario, 0.0)
    monitor.on_tick(scenario, 900.0)
    scenario.pair.engines["beta"].role = Role.BACKUP  # resolved in time
    monitor.on_tick(scenario, 1_800.0)
    assert monitor.violations == []


def test_split_brain_ignores_dual_primary_under_partition():
    monitor = SplitBrainMonitor(grace=1_000.0)
    scenario = dual_primary_scenario(connected=False)
    for now in (0.0, 2_000.0, 10_000.0):
        monitor.on_tick(scenario, now)
    assert monitor.violations == []


# ---------------------------------------------------------------------------
# RecoveryLatencyMonitor


def test_recovery_latency_fires_on_prolonged_outage():
    monitor = RecoveryLatencyMonitor(bound=1_000.0)
    scenario = FakeScenario(
        {
            "alpha": FakeEngine(role=Role.BACKUP),
            "beta": FakeEngine(alive=False, role=Role.SHUTDOWN),
        }
    )
    for now in (0.0, 500.0, 1_000.0, 1_600.0):
        monitor.on_tick(scenario, now)
    assert [v.invariant for v in monitor.violations] == ["recovery-latency"]


def test_recovery_latency_clock_pauses_when_nothing_can_recover():
    monitor = RecoveryLatencyMonitor(bound=1_000.0)
    scenario = FakeScenario(
        {
            "alpha": FakeEngine(alive=False, role=Role.SHUTDOWN),
            "beta": FakeEngine(alive=False, role=Role.SHUTDOWN),
        }
    )
    for now in (0.0, 2_000.0, 50_000.0):
        monitor.on_tick(scenario, now)
    assert monitor.violations == []


def test_recovery_latency_treats_serving_dual_primary_as_available():
    monitor = RecoveryLatencyMonitor(bound=1_000.0)
    scenario = dual_primary_scenario()
    for now in (0.0, 5_000.0, 10_000.0):
        monitor.on_tick(scenario, now)
    assert monitor.violations == []


def test_recovery_latency_requires_running_apps():
    monitor = RecoveryLatencyMonitor(bound=1_000.0)
    scenario = FakeScenario(
        {
            "alpha": FakeEngine(apps={"synthetic": FakeApp(running=False)}),
            "beta": FakeEngine(role=Role.BACKUP),
        }
    )
    for now in (0.0, 800.0, 1_900.0):
        monitor.on_tick(scenario, now)
    assert len(monitor.violations) == 1


# ---------------------------------------------------------------------------
# HeartbeatLivenessMonitor


def test_heartbeat_liveness_fires_on_stuck_suspicion():
    monitor = HeartbeatLivenessMonitor(grace=1_000.0)
    scenario = FakeScenario(
        {"alpha": FakeEngine(suspected=True), "beta": FakeEngine(role=Role.BACKUP)}
    )
    for now in (0.0, 600.0, 1_700.0):
        monitor.on_tick(scenario, now)
    assert [v.invariant for v in monitor.violations] == ["heartbeat-liveness"]
    assert monitor.violations[0].detail["nodes"] == ["alpha"]


def test_heartbeat_liveness_resets_on_disconnect():
    monitor = HeartbeatLivenessMonitor(grace=1_000.0)
    scenario = FakeScenario(
        {"alpha": FakeEngine(suspected=True), "beta": FakeEngine(role=Role.BACKUP)}
    )
    monitor.on_tick(scenario, 0.0)
    scenario.network.connected = False
    monitor.on_tick(scenario, 5_000.0)  # window must restart after this
    scenario.network.connected = True
    monitor.on_tick(scenario, 5_100.0)
    monitor.on_tick(scenario, 5_900.0)
    assert monitor.violations == []


# ---------------------------------------------------------------------------
# CheckpointMonotonicityMonitor


class FakeCheckpoint:
    def __init__(self, app_name, sequence):
        self.app_name = app_name
        self.sequence = sequence


class FakeKernel:
    def __init__(self):
        self.now = 0.0


def hooked_engine(monitor):
    engine = FakeEngine()
    engine.kernel = FakeKernel()
    monitor.on_engine(engine)
    return engine


def test_checkpoint_monotonicity_accepts_increasing_sequences():
    monitor = CheckpointMonotonicityMonitor()
    engine = hooked_engine(monitor)
    for seq in (1, 2, 5):
        for hook in engine.on_checkpoint_submit:
            hook(engine, FakeCheckpoint("synthetic", seq))
        for hook in engine.on_checkpoint_stored:
            hook(engine, FakeCheckpoint("synthetic", seq))
    assert monitor.violations == []


def test_checkpoint_monotonicity_flags_regression():
    monitor = CheckpointMonotonicityMonitor()
    engine = hooked_engine(monitor)
    for seq in (3, 3):
        for hook in engine.on_checkpoint_submit:
            hook(engine, FakeCheckpoint("synthetic", seq))
    assert len(monitor.violations) == 1
    assert monitor.violations[0].detail["kind"] == "submit"
    assert monitor.violations[0].detail["previous"] == 3


def test_checkpoint_monotonicity_tracks_engines_independently():
    monitor = CheckpointMonotonicityMonitor()
    old = hooked_engine(monitor)
    for hook in old.on_checkpoint_submit:
        hook(old, FakeCheckpoint("synthetic", 7))
    reinstalled = hooked_engine(monitor)  # new engine object restarts at 1
    for hook in reinstalled.on_checkpoint_submit:
        hook(reinstalled, FakeCheckpoint("synthetic", 8))
    assert monitor.violations == []


# ---------------------------------------------------------------------------
# DiverterConservationMonitor


class FakeQueueManager:
    def __init__(self, sent, delivered_local=0, acked=0, dead_lettered=0, pending=0):
        self.stats = {
            "sent": sent,
            "delivered_local": delivered_local,
            "acked": acked,
            "dead_lettered": dead_lettered,
        }
        self._pending = pending
        self.queues = {DEAD_LETTER_QUEUE: [None] * dead_lettered}

    def pending_count(self):
        return self._pending


def test_diverter_conservation_balanced():
    monitor = DiverterConservationMonitor()
    scenario = FakeScenario({"alpha": FakeEngine(), "beta": FakeEngine(role=Role.BACKUP)})
    scenario.client_qmgr = FakeQueueManager(sent=10, acked=6, dead_lettered=1, pending=3)
    monitor.on_tick(scenario, 1_000.0)
    monitor.finalize(scenario, 2_000.0)
    assert monitor.violations == []


def test_diverter_conservation_detects_silent_loss():
    monitor = DiverterConservationMonitor()
    scenario = FakeScenario({"alpha": FakeEngine(), "beta": FakeEngine(role=Role.BACKUP)})
    scenario.client_qmgr = FakeQueueManager(sent=10, acked=6, pending=3)  # one vanished
    monitor.on_tick(scenario, 1_000.0)
    assert len(monitor.violations) == 1
    assert monitor.violations[0].detail["imbalance"] == 1


# ---------------------------------------------------------------------------
# End-to-end: real runs through the runner.


def test_clean_run_has_no_violations():
    schedule = ChaosSchedule(
        entries=[
            FaultEntry(2_000.0, "app-crash", {"node": "alpha", "process": "synthetic"}),
            FaultEntry(5_000.0, "gray-node", {"node": "beta", "delay": 100.0}),
            FaultEntry(8_000.0, "gray-node", {"node": "beta", "delay": 0.0}),
        ],
        horizon=18_000.0,
    )
    result = run_schedule(0, schedule)
    assert result.passed, result.violation_names()
    assert result.workload_sent > 0


def test_sabotaged_run_is_caught_by_split_brain_monitor():
    schedule = ChaosSchedule(entries=list(SELF_TEST_ENTRIES), horizon=SELF_TEST_HORIZON)
    result = run_schedule(0, schedule, sabotage_name=SELF_TEST_SABOTAGE)
    assert not result.passed
    assert "split-brain" in result.violation_names()


def test_same_seed_runs_are_wire_identical():
    schedule = ChaosSchedule(
        entries=[
            FaultEntry(2_000.0, "partition", {"side_a": ["alpha"], "side_b": ["beta"]}),
            FaultEntry(6_000.0, "heal-network", {}),
        ],
        horizon=16_000.0,
    )
    first = run_schedule(3, schedule)
    second = run_schedule(3, schedule)
    assert first.as_wire() == second.as_wire()
    assert first.trace_fingerprint == second.trace_fingerprint


# ---------------------------------------------------------------------------
# StrategyFlappingMonitor / RestartThrashMonitor


class FakeSwitchKernel:
    def __init__(self):
        self.now = 0.0


class FakeSwitchEngine:
    def __init__(self):
        self.kernel = FakeSwitchKernel()
        self.node_name = "alpha"
        self.on_strategy_switch = []
        self.local_restart_count = 0

    def switch(self, now, old="cold-passive", new="leader-follower"):
        self.kernel.now = now
        for hook in self.on_strategy_switch:
            hook(self, old, new, "test")


def test_strategy_flapping_fires_past_bound_in_window():
    from repro.chaos.invariants import StrategyFlappingMonitor

    monitor = StrategyFlappingMonitor(bound=3, window=10_000.0)
    engine = FakeSwitchEngine()
    monitor.on_engine(engine)
    for now in (1_000.0, 2_000.0, 3_000.0):
        engine.switch(now)
    assert monitor.violations == []  # exactly at the bound
    engine.switch(4_000.0)
    assert [v.invariant for v in monitor.violations] == ["strategy-flapping"]
    assert monitor.violations[0].detail["switches"] == 4


def test_strategy_flapping_tolerates_spread_out_switches():
    from repro.chaos.invariants import StrategyFlappingMonitor

    monitor = StrategyFlappingMonitor(bound=3, window=10_000.0)
    engine = FakeSwitchEngine()
    monitor.on_engine(engine)
    for now in (0.0, 11_000.0, 22_000.0, 33_000.0, 44_000.0):
        engine.switch(now)
    assert monitor.violations == []


def test_strategy_flapping_inert_without_switches():
    from repro.chaos.invariants import StrategyFlappingMonitor

    monitor = StrategyFlappingMonitor()
    monitor.on_engine(FakeSwitchEngine())
    assert monitor.violations == []


def test_restart_thrash_fires_on_rapid_burst():
    from repro.chaos.invariants import RestartThrashMonitor

    monitor = RestartThrashMonitor(bound=5, window=4_000.0)
    engine = FakeSwitchEngine()
    monitor.on_engine(engine)
    for tick in range(6):
        engine.local_restart_count += 1
        monitor.on_tick(None, 100.0 * (tick + 1))
    assert [v.invariant for v in monitor.violations] == ["restart-thrash"]
    assert monitor.violations[0].detail["restarts"] == 6


def test_restart_thrash_tolerates_governed_pace():
    from repro.chaos.invariants import RestartThrashMonitor

    monitor = RestartThrashMonitor(bound=5, window=4_000.0)
    engine = FakeSwitchEngine()
    monitor.on_engine(engine)
    for tick in range(10):
        engine.local_restart_count += 1
        monitor.on_tick(None, 1_000.0 * (tick + 1))  # one per second: 4 in any window
    assert monitor.violations == []


def test_restart_thrash_ignores_preexisting_count():
    from repro.chaos.invariants import RestartThrashMonitor

    monitor = RestartThrashMonitor(bound=5, window=4_000.0)
    engine = FakeSwitchEngine()
    engine.local_restart_count = 50  # history from before attach
    monitor.on_engine(engine)
    monitor.on_tick(None, 100.0)
    assert monitor.violations == []
