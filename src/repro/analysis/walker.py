"""Shared AST infrastructure: source loading and pass orchestration.

A :class:`SourceFile` bundles one parsed module with its suppression
state; :func:`load_sources` walks the argument paths in sorted order so
reports are byte-stable across runs (the toolkit holds itself to the
determinism bar it enforces).  Passes are plain callables taking the full
file list — the COM and race passes need project-wide context (interface
declarations, class tables), so per-file visitors would not do.
"""

from __future__ import annotations

# oftt-lint: file-ok[ambient-io] -- the analyzer is a host-side tool; it
# exists to read the filesystem.

import ast
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import SYNTAX_RULE, AnalysisError, Finding
from repro.analysis.suppress import Suppressions, parse_suppressions


@dataclass
class SourceFile:
    """One module under analysis."""

    path: str  # as reported (relative to the invocation cwd)
    source: str
    tree: Optional[ast.Module]  # None when the file does not parse
    suppressions: Suppressions

    @property
    def module_name(self) -> str:
        """Dotted module guess from the path (best effort, for messages)."""
        trimmed = self.path[:-3] if self.path.endswith(".py") else self.path
        parts = [part for part in trimmed.replace(os.sep, "/").split("/") if part not in ("", ".", "src")]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)


#: A pass: (files) -> findings.  Registered in cli.PASSES.
Pass = Callable[[Sequence[SourceFile]], List[Finding]]


def _iter_python_files(path: str) -> Iterable[str]:
    if os.path.isfile(path):
        yield path
        return
    if not os.path.isdir(path):
        raise AnalysisError(f"no such file or directory: {path}")
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith(".") and d != "__pycache__" and not d.endswith(".egg-info"))
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def load_sources(paths: Sequence[str]) -> Tuple[List[SourceFile], List[Finding]]:
    """Load every ``*.py`` under *paths*; returns (files, parse findings).

    Files flagged ``skip-file`` are dropped here so no pass sees them.
    """
    files: List[SourceFile] = []
    findings: List[Finding] = []
    seen: Dict[str, bool] = {}
    for path in paths:
        for filename in _iter_python_files(path):
            if filename in seen:
                continue
            seen[filename] = True
            with open(filename, "r", encoding="utf-8") as handle:  # oftt-lint: ok[ambient-io]
                source = handle.read()
            suppressions = parse_suppressions(filename, source)
            if suppressions.skip_file:
                # The file is excluded from every pass, but its own
                # suppression mistakes must still surface: a misspelled
                # rule in a standalone `file-ok`/`skip-file` comment
                # would otherwise rot silently (GEN002).
                findings.extend(suppressions.errors)
                continue
            try:
                tree = ast.parse(source, filename=filename)
            except SyntaxError as exc:
                findings.append(
                    Finding(SYNTAX_RULE, filename, exc.lineno or 1, exc.offset or 0, f"syntax error: {exc.msg}")
                )
                tree = None
            files.append(SourceFile(filename, source, tree, suppressions))
    return files, findings


def apply_suppressions(findings: Sequence[Finding], files: Sequence[SourceFile]) -> List[Finding]:
    """Drop findings silenced by their file's ``# oftt-lint: ok[...]`` comments."""
    by_path = {f.path: f for f in files}
    kept: List[Finding] = []
    for finding in findings:
        owner = by_path.get(finding.path)
        if owner is None or owner.suppressions.allows(finding):
            kept.append(finding)
    return kept


def suppression_errors(files: Sequence[SourceFile]) -> List[Finding]:
    """Bad suppression comments are findings themselves (GEN002)."""
    errors: List[Finding] = []
    for source_file in files:
        errors.extend(source_file.suppressions.errors)
    return errors


def run_passes(files: Sequence[SourceFile], passes: Sequence[Pass]) -> List[Finding]:
    """Run *passes*, apply per-file suppressions, and sort the survivors."""
    findings: List[Finding] = []
    for one_pass in passes:
        findings.extend(one_pass(files))
    kept = apply_suppressions(findings, files)
    kept.extend(suppression_errors(files))
    kept.sort(key=Finding.sort_key)
    return kept


# -- small AST helpers shared by the passes -------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> imported dotted path, for Import/ImportFrom at any depth."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = name.name if name.asname else name.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                aliases[name.asname or name.name] = f"{node.module}.{name.name}"
    return aliases


def resolve_call_name(node: ast.Call, aliases: Dict[str, str]) -> Optional[str]:
    """Dotted callee name with its first segment resolved through imports.

    ``npr.shuffle(...)`` with ``import numpy.random as npr`` resolves to
    ``numpy.random.shuffle``; unresolvable callees return the raw dotted
    name (or None for computed callees).
    """
    raw = dotted_name(node.func)
    if raw is None:
        return None
    head, _, rest = raw.partition(".")
    resolved = aliases.get(head, head)
    return f"{resolved}.{rest}" if rest else resolved
