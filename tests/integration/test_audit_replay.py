"""Audit-replay tests: reconciling recovered state with ground truth.

The Calling History generator (Table 1) is the authoritative record; its
``replay_into`` fills any gap a failover left in the recovered Call Track
state.  After replay the application must match ground truth exactly —
the reconciliation an operator would run after an incident.
"""

from repro.faults import MiddlewareCrash, NodeFailure
from repro.faults.campaign import Campaign
from repro.harness.scenario import build_demo


def test_replay_fills_demo_d_loss_window():
    """Demo (d) can lose a bounded number of events; replay recovers
    them and the histogram reconciles exactly."""
    demo = build_demo(seed=91)
    demo.start()
    demo.run_for(20_000.0)
    campaign = Campaign(demo.kernel, demo, settle_timeout=20_000.0)
    campaign.run_fault(MiddlewareCrash(demo.pair.primary_node()))
    demo.run_for(10_000.0)
    demo.telephone.stop()  # freeze the workload for the audit
    demo.run_for(2_000.0)  # drain in-flight queue deliveries

    app = demo.primary_app()
    replayed = demo.history.replay_into(app)
    assert replayed <= 3  # only the loss window needed filling
    assert app.histogram() == demo.history.histogram()
    state = app.state()
    counts = demo.history.counts()
    assert state["total_calls"] == counts["total_calls"]
    assert state["blocked_calls"] == counts["blocked_calls"]
    assert state["events_processed"] == counts["events"]


def test_replay_into_healthy_app_is_a_noop():
    demo = build_demo(seed=92)
    demo.start()
    demo.run_for(20_000.0)
    demo.telephone.stop()
    demo.run_for(2_000.0)
    app = demo.primary_app()
    processed_before = app.events_processed()
    replayed = demo.history.replay_into(app)
    assert replayed == 0  # everything already applied
    assert app.events_processed() == processed_before


def test_replay_after_node_failover_reconciles():
    demo = build_demo(seed=93)
    demo.start()
    demo.run_for(20_000.0)
    campaign = Campaign(demo.kernel, demo, settle_timeout=20_000.0)
    campaign.run_fault(NodeFailure(demo.pair.primary_node()))
    demo.run_for(10_000.0)
    demo.telephone.stop()
    demo.run_for(2_000.0)
    app = demo.primary_app()
    demo.history.replay_into(app)
    assert app.histogram() == demo.history.histogram()
