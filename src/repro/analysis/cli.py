"""Command-line driver: ``python -m repro.analysis`` / ``oftt-lint``.

Exit-code contract (relied on by ``make verify`` and the dogfood test):

* ``0`` — no gating findings (errors; plus warnings under ``--strict``)
* ``1`` — at least one gating finding
* ``2`` — usage or internal error (bad path, unknown pass)

Examples::

    python -m repro.analysis src/repro                # default passes, text
    python -m repro.analysis src/repro --effects      # + interprocedural effects
    python -m repro.analysis src/repro --format json  # machine output
    python -m repro.analysis src examples --passes det,race --strict
    python -m repro.analysis src tests --relax tests=DET002,DET006
    python -m repro.analysis src/repro --effects --max-k 1   # cheaper fixpoint
    oftt-lint --list-rules

``--relax PREFIX=RULE[,RULE...]`` (repeatable) is the per-directory rule
profile: findings for the named rules in files under ``PREFIX`` are
downgraded to ``info`` so they never gate.  Tests legitimately draw
module-level randomness and read the environment (property-style test
generators, CLI fixtures), so ``make lint-tests`` relaxes the ambient
DET rules for ``tests/`` while keeping everything else at full strength.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import cache, comcheck, determinism, effects, hotpath, lifecycle, races
from repro.analysis.findings import AnalysisError, Finding, Severity, all_rules, lookup
from repro.analysis.report import render_json, render_text
from repro.analysis.walker import Pass, load_sources, run_passes, suppression_errors

#: Registered passes, in execution order.  ``effects``, ``hot`` and
#: ``life`` are opt-in via ``--effects``/``--hotpath``/``--lifecycle``
#: (or explicit ``--passes`` entries) because they are whole-program
#: passes; ``make lint`` turns all three on.
PASSES: Dict[str, Pass] = {
    "det": determinism.run,
    "com": comcheck.run,
    "race": races.run,
    "effects": effects.run,
    "hot": hotpath.run,
    "life": lifecycle.run,
}

#: Passes run when ``--passes`` is not given.
DEFAULT_PASSES = "det,com,race"

#: Rule-id family prefix -> passes that can emit it, for ``--only``.
#: GEN findings (syntax/suppression hygiene) always pass the filter.
FAMILIES: Dict[str, Tuple[str, ...]] = {
    "GEN": (),
    "DET": ("det",),
    "COM": ("com",),
    "RACE": ("race", "effects"),
    "PURE": ("effects",),
    "HOT": ("hot",),
    "LIFE": ("life",),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oftt-lint",
        description="Determinism linter, COM contract checker, and sim race detector.",
    )
    parser.add_argument("paths", nargs="*", default=["src/repro"],
                        help="files or directories to analyse (default: src/repro)")
    parser.add_argument("--passes", default=DEFAULT_PASSES, metavar="NAMES",
                        help="comma-separated subset of det,com,race,effects,hot,life "
                             f"(default: {DEFAULT_PASSES})")
    parser.add_argument("--effects", action="store_true",
                        help="also run the interprocedural effects pass "
                             "(RACE101-103 handler races, PURE001-004 parallel_map purity)")
    parser.add_argument("--hotpath", action="store_true",
                        help="also run the hot-path pass (HOT001-006 per-event waste "
                             "in functions reachable from the hot-root manifest)")
    parser.add_argument("--hot-manifest", default=None, metavar="PATH",
                        help="hot-root manifest for the hotpath pass "
                             "(default: the checked-in repro/analysis/hotpath.manifest)")
    parser.add_argument("--lifecycle", action="store_true",
                        help="also run the resource-lifecycle pass (LIFE001-006 "
                             "acquire/release leaks against the lifecycle manifest)")
    parser.add_argument("--life-manifest", default=None, metavar="PATH",
                        help="acquire/release manifest for the lifecycle pass "
                             "(default: the checked-in repro/analysis/lifecycle.manifest)")
    parser.add_argument("--only", default=None, metavar="FAMILIES",
                        help="restrict to the named rule families, e.g. --only LIFE,HOT: "
                             "runs exactly the passes those families need and reports "
                             "only their findings (plus GEN hygiene)")
    parser.add_argument("--max-k", type=int, default=effects.DEFAULT_MAX_K, metavar="N",
                        help="inlining depth for the effects/hotpath passes: effects and "
                             "hotness propagate through at most N call hops "
                             f"(default: {effects.DEFAULT_MAX_K})")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache (always re-analyse)")
    parser.add_argument("--cache-path", default=cache.DEFAULT_PATH, metavar="PATH",
                        help=f"result cache location (default: {cache.DEFAULT_PATH})")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--json", action="store_const", const="json", dest="format",
                        help="shorthand for --format json")
    parser.add_argument("--strict", action="store_true",
                        help="warnings gate the exit code too")
    parser.add_argument("--relax", action="append", default=[], metavar="PREFIX=RULES",
                        help="downgrade the named rules to info for files under PREFIX "
                             "(repeatable, e.g. --relax tests=DET002,DET006)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    return parser


def parse_relaxations(specs: Sequence[str]) -> List[Tuple[str, Set[str]]]:
    """Parse ``PREFIX=RULE[,RULE...]`` specs into (prefix, rule-id set) pairs.

    Rules may be named by id (``DET002``) or slug (``unseeded-random``);
    unknown names are a usage error so a typo cannot silently relax
    nothing.
    """
    relaxations: List[Tuple[str, Set[str]]] = []
    for spec in specs:
        prefix, sep, names = spec.partition("=")
        rule_tokens = [token.strip() for token in names.split(",") if token.strip()]
        if not sep or not prefix.strip() or not rule_tokens:
            raise AnalysisError(f"bad --relax spec {spec!r}; expected PREFIX=RULE[,RULE...]")
        relaxations.append(
            (os.path.normpath(prefix.strip()), {lookup(token).rule_id for token in rule_tokens})
        )
    return relaxations


def _under(path: str, prefix: str) -> bool:
    normalized = os.path.normpath(path)
    return normalized == prefix or normalized.startswith(prefix + os.sep)


def apply_relaxations(
    findings: Sequence[Finding], relaxations: Sequence[Tuple[str, Set[str]]]
) -> List[Finding]:
    """Downgrade relaxed findings to INFO; everything else passes through."""
    relaxed: List[Finding] = []
    for finding in findings:
        for prefix, rule_ids in relaxations:
            if finding.rule.rule_id in rule_ids and _under(finding.path, prefix):
                finding = dataclasses.replace(
                    finding,
                    rule=dataclasses.replace(finding.rule, severity=Severity.INFO),
                )
                break
        relaxed.append(finding)
    return relaxed


def rule_family(rule_id: str) -> str:
    """Leading alphabetic prefix of a rule id (``LIFE003`` -> ``LIFE``)."""
    alpha = 0
    while alpha < len(rule_id) and rule_id[alpha].isalpha():
        alpha += 1
    return rule_id[:alpha]


def parse_only(spec: str) -> Set[str]:
    """Parse ``--only LIFE,HOT`` into a family set; typos are usage errors."""
    families = {token.strip().upper() for token in spec.split(",") if token.strip()}
    if not families:
        raise AnalysisError(f"bad --only spec {spec!r}; expected FAMILY[,FAMILY...]")
    unknown = sorted(families - set(FAMILIES))
    if unknown:
        raise AnalysisError(
            f"unknown rule family {', '.join(unknown)} (choose from {', '.join(sorted(FAMILIES))})"
        )
    return families


def list_rules() -> str:
    lines: List[str] = []
    family = None
    for entry in all_rules():
        if rule_family(entry.rule_id) != family:
            if family is not None:
                lines.append("")
            family = rule_family(entry.rule_id)
            lines.append(f"# {family}")
        lines.append(f"{entry.rule_id}  {entry.slug:24s} {str(entry.severity):8s} [{entry.pass_name}] {entry.summary}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        print(list_rules())
        return 0

    pass_names = [name.strip() for name in options.passes.split(",") if name.strip()]
    if options.effects and "effects" not in pass_names:
        pass_names.append("effects")
    if options.hotpath and "hot" not in pass_names:
        pass_names.append("hot")
    if options.lifecycle and "life" not in pass_names:
        pass_names.append("life")
    try:
        if options.max_k < 0:
            raise AnalysisError(f"--max-k must be >= 0, got {options.max_k}")
        only_families: Optional[Set[str]] = None
        if options.only is not None:
            # Run exactly the passes the selected families need, in the
            # canonical PASSES order, regardless of other flags.
            only_families = parse_only(options.only)
            needed = {name for family in only_families for name in FAMILIES[family]}
            pass_names = [name for name in PASSES if name in needed]
        named: List[Tuple[str, Pass]] = []
        for name in pass_names:
            if name not in PASSES:
                raise AnalysisError(f"unknown pass {name!r} (choose from {', '.join(PASSES)})")
            if name == "effects":
                named.append((name, effects.make_pass(options.max_k)))
            elif name == "hot":
                named.append((name, hotpath.make_pass(options.max_k, options.hot_manifest)))
            elif name == "life":
                named.append((name, lifecycle.make_pass(options.max_k, options.life_manifest)))
            else:
                named.append((name, PASSES[name]))
        relaxations = parse_relaxations(options.relax)
        manifest_digest = ""
        if "hot" in pass_names:
            # Editing the manifest must invalidate cached hot findings.
            manifest_digest = cache.file_digest(options.hot_manifest or hotpath.DEFAULT_MANIFEST)
        life_digest = ""
        if "life" in pass_names:
            # Same contract for the lifecycle manifest.
            life_digest = cache.file_digest(options.life_manifest or lifecycle.DEFAULT_MANIFEST)
        files, load_findings = load_sources(options.paths or ["src/repro"])
    except AnalysisError as exc:
        print(f"oftt-lint: {exc}", file=sys.stderr)
        return 2

    if options.no_cache:
        findings = run_passes(files, [one_pass for _, one_pass in named])
    else:
        config_key = f"max_k={options.max_k};manifest={manifest_digest};life_manifest={life_digest}"
        findings, _stats = cache.run_cached(files, named, options.cache_path, config_key)
        findings.extend(suppression_errors(files))
        findings.sort(key=Finding.sort_key)
    findings = sorted(load_findings + findings, key=lambda f: f.sort_key())
    findings = apply_relaxations(findings, relaxations)
    if only_families is not None:
        keep = only_families | {"GEN"}
        findings = [f for f in findings if rule_family(f.rule.rule_id) in keep]

    if options.format == "json":
        sys.stdout.write(render_json(findings, len(files), pass_names))
    else:
        print(render_text(findings, len(files), pass_names))

    gate = Severity.WARNING if options.strict else Severity.ERROR
    return 1 if any(f.severity >= gate for f in findings) else 0


if __name__ == "__main__":
    sys.exit(main())
