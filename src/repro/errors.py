"""Exception hierarchy shared across the OFTT reproduction.

Every layer of the stack (simulation kernel, NT model, COM runtime, MSMQ,
OPC, OFTT core) derives its errors from :class:`ReproError` so that callers
can catch the whole family with one clause while still discriminating the
layer that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimError(ReproError):
    """Error in the discrete-event simulation kernel."""


class SimDeadlock(SimError):
    """The kernel ran out of events while processes were still waiting."""


class NTError(ReproError):
    """Error in the simulated Windows NT layer."""


class ProcessDead(NTError):
    """An operation targeted a process that has terminated."""


class ThreadDead(NTError):
    """An operation targeted a thread that has terminated."""


class AccessViolation(NTError):
    """A memory access touched an unmapped or protected region."""


class ComError(ReproError):
    """COM runtime failure.  Carries an HRESULT-like code."""

    def __init__(self, hresult: int, message: str = "") -> None:
        super().__init__(message or f"COM error 0x{hresult & 0xFFFFFFFF:08X}")
        self.hresult = hresult


class RpcError(ComError):
    """A DCOM remote procedure call failed (server gone, timeout, ...)."""


class MsqError(ReproError):
    """Message-queue substrate failure."""


class QueueNotFound(MsqError):
    """The addressed queue does not exist on the target node."""


class OpcError(ReproError):
    """OPC layer failure.

    Carries an HRESULT so server-side raises marshal faithfully through
    :mod:`repro.com.dcom` instead of degrading to an anonymous ``E_FAIL``
    (the values live in :mod:`repro.com.hresult`; the default here is the
    literal ``E_FAIL`` to keep this module import-cycle free).
    """

    default_hresult = 0x8000_4005  # E_FAIL

    def __init__(self, message: str = "", hresult: int = 0) -> None:
        super().__init__(message)
        self.hresult = hresult or self.default_hresult


class ItemNotFound(OpcError):
    """An OPC item id does not exist in the server's address space."""

    default_hresult = 0xC004_0007  # OPC_E_UNKNOWNITEMID


class OfttError(ReproError):
    """OFTT middleware failure."""


class NotInitialized(OfttError):
    """An OFTT API was called before ``OFTTInitialize``."""


class CheckpointError(OfttError):
    """Checkpoint capture, transfer or restore failed."""


class RoleError(OfttError):
    """Illegal role transition or negotiation failure."""


class WatchdogError(OfttError):
    """Watchdog timer misuse (unknown id, double delete, ...)."""


class FaultInjectionError(ReproError):
    """A fault campaign was malformed or targeted a missing component."""
