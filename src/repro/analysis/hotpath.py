"""Hot-path allocation/complexity pass (HOT001-HOT006).

The sim kernel drain loop, the trace emit/fingerprint path, and the
network delivery path run once *per simulated event* — 200k+ times in a
single bench run.  Waste that is invisible in cold code (a fresh constant
list, an eager f-string, a linear scan over a structure that grows with
event count) multiplies into the top line of ``oftt-bench``.  This pass
makes hotness a checked property instead of tribal knowledge:

* Hot **roots** are declared in a checked-in manifest
  (``repro/analysis/hotpath.manifest``; override with ``--hot-manifest``).
  Each line is ``MODULE:QUALNAME`` — the module may be a dotted suffix so
  the same manifest works regardless of the invocation directory.
* Hotness propagates through the :mod:`repro.analysis.callgraph` edges,
  bounded by the same ``--max-k`` budget as the effects pass: any
  function reachable from a root within ``max_k`` call hops is hot.
  Roots that match nothing in the analysed file set are inert (the
  manifest describes the whole project; a partial lint sees a subset).
* Over hot functions only, six rules flag per-event waste (HOT001-006
  below).  Findings carry the propagation route ("hot via
  ``SimKernel.run -> _maybe_compact``") so a reviewer can judge whether
  the path is genuinely hot before fixing or annotating.

Like every pass, findings respect ``# oftt-lint: ok[slug]`` suppressions
and the reviewed-benign annotations double as documentation of why the
code is the way it is.  Known imprecision is catalogued in ANALYSIS.md.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, FunctionInfo, build_call_graph
from repro.analysis.effects import DEFAULT_MAX_K
from repro.analysis.findings import AnalysisError, Finding, Severity, rule
from repro.analysis.walker import SourceFile

HOT_FRESH_CONTAINER = rule(
    "HOT001",
    "hot-fresh-container",
    Severity.WARNING,
    "hot",
    "Constant container literal rebuilt on every call of a hot function; hoist to a module constant.",
)
HOT_EAGER_FORMAT = rule(
    "HOT002",
    "hot-eager-format",
    Severity.WARNING,
    "hot",
    "String formatted eagerly in a hot function but only consumed conditionally; build it where it is used.",
)
HOT_LINEAR_SCAN = rule(
    "HOT003",
    "hot-linear-scan",
    Severity.WARNING,
    "hot",
    "O(n) scan per event over a structure that grows with event count (membership, sorted(), full materialization).",
)
HOT_UNMEMOIZED_HEAVY = rule(
    "HOT004",
    "hot-unmemoized-heavy",
    Severity.WARNING,
    "hot",
    "deepcopy/json/pickle/hashlib invoked per event without a memo guard on an immutable carrier.",
)
HOT_NO_SLOTS = rule(
    "HOT005",
    "hot-no-slots",
    Severity.WARNING,
    "hot",
    "Class instantiated in a hot function lacks __slots__ (dataclasses: slots=True); each instance pays a dict.",
)
HOT_AMBIENT_RELOOKUP = rule(
    "HOT006",
    "hot-ambient-relookup",
    Severity.WARNING,
    "hot",
    "Invariant module attribute or self attribute re-looked-up per event in a hot function; bind it to a local.",
)

#: Default manifest shipped next to the pass.
DEFAULT_MANIFEST = os.path.join(os.path.dirname(__file__), "hotpath.manifest")

#: Mutating container methods that mark a ``self.attr`` as *growing with
#: event count* for HOT003 (set/dict ``add``/``setdefault`` deliberately
#: excluded: their membership checks are O(1)).
_GROWTH_CALLS = {"append", "extend", "insert", "appendleft"}

#: Fully-resolved callables HOT004 treats as heavy per-event work.
_HEAVY_CALLS = {
    "copy.deepcopy",
    "json.dumps",
    "json.loads",
    "pickle.dumps",
    "pickle.loads",
}
_HEAVY_PREFIXES = ("hashlib.",)

#: Base-class names whose subclasses HOT005 leaves alone: exceptions are
#: built on the raise path, and Enum/NamedTuple manage their own layout.
_SLOTLESS_BASES = ("Error", "Exception", "Enum", "NamedTuple", "Protocol")


@dataclass(frozen=True)
class RootSpec:
    """One manifest line: a function declared hot by fiat."""

    module: str  # dotted module path, matched exactly or as a suffix
    qualname: str  # "Class.method" or "function"


def load_manifest(path: str) -> List[RootSpec]:
    """Parse a hot-root manifest; ``#`` comments and blank lines ignored."""
    specs: List[RootSpec] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:  # oftt-lint: ok[ambient-io]
            lines = handle.readlines()
    except OSError as exc:
        raise AnalysisError(f"cannot read hot-root manifest {path}: {exc}") from exc
    for lineno, raw in enumerate(lines, 1):
        text = raw.split("#", 1)[0].strip()
        if not text:
            continue
        module, sep, qualname = text.partition(":")
        module = module.strip()
        qualname = qualname.strip()
        if not sep or not module or not qualname:
            raise AnalysisError(
                f"{path}:{lineno}: bad hot-root spec {text!r}; expected MODULE:QUALNAME"
            )
        specs.append(RootSpec(module, qualname))
    return specs


def _module_matches(module: str, spec_module: str) -> bool:
    return module == spec_module or module.endswith("." + spec_module)


def resolve_roots(graph: CallGraph, specs: Sequence[RootSpec]) -> List[str]:
    """Function keys for every manifest spec present in the analysed set."""
    roots: List[str] = []
    seen: Set[str] = set()
    for key in sorted(graph.functions):
        info = graph.functions[key]
        for spec in specs:
            if info.qualname == spec.qualname and _module_matches(info.module, spec.module):
                if key not in seen:
                    seen.add(key)
                    roots.append(key)
                break
    return roots


def hot_functions(
    graph: CallGraph, roots: Sequence[str], max_k: int
) -> Dict[str, Tuple[str, ...]]:
    """Breadth-first hotness: key -> route of keys from a declaring root.

    Reuses the call graph's deterministic edge order, bounded by
    *max_k* hops (the same budget the effects pass uses), so a helper
    buried deeper than the budget is — by design — not hot.  Cycles are
    handled by the visited set: a function keeps the shortest route that
    first reached it.
    """
    hot: Dict[str, Tuple[str, ...]] = {key: (key,) for key in roots}
    frontier = list(roots)
    for _ in range(max_k):
        if not frontier:
            break
        next_frontier: List[str] = []
        for key in frontier:
            route = hot[key]
            for edge in graph.callees(key):
                if edge.callee not in hot:
                    hot[edge.callee] = route + (edge.callee,)
                    next_frontier.append(edge.callee)
        frontier = next_frontier
    return hot


def _route_str(route: Tuple[str, ...], graph: CallGraph) -> str:
    if len(route) == 1:
        return "declared hot root"
    names = " -> ".join(graph.functions[key].qualname for key in route)
    return f"hot via {names}"


# -- shared AST helpers ----------------------------------------------------


def _parent_map(func: ast.FunctionDef) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for parent in ast.walk(func):
        for child in ast.iter_child_nodes(parent):
            parents[id(child)] = parent
    return parents


def _ancestors(node: ast.AST, parents: Dict[int, ast.AST]) -> Iterator[ast.AST]:
    while id(node) in parents:
        node = parents[id(node)]
        yield node


def _under_raise(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    return any(isinstance(a, ast.Raise) for a in _ancestors(node, parents))


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _body_walk(func: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk the function *body* only (skips decorators/annotations/defaults)."""
    for stmt in func.body:
        yield from ast.walk(stmt)


# -- per-rule checks -------------------------------------------------------


def _constant_container(node: ast.AST) -> Optional[str]:
    if isinstance(node, (ast.List, ast.Set)):
        if node.elts and all(isinstance(e, ast.Constant) for e in node.elts):
            return "list" if isinstance(node, ast.List) else "set"
    elif isinstance(node, ast.Dict):
        if (
            node.keys
            and all(k is not None and isinstance(k, ast.Constant) for k in node.keys)
            and all(isinstance(v, ast.Constant) for v in node.values)
        ):
            return "dict"
    return None


def _check_fresh_containers(ctx: "_FunctionContext", findings: List[Finding]) -> None:
    for node in _body_walk(ctx.func):
        kind = _constant_container(node)
        if kind is None or _under_raise(node, ctx.parents):
            continue
        findings.append(
            ctx.finding(
                HOT_FRESH_CONTAINER,
                node,
                f"constant {kind} literal rebuilt every call; hoist to a module constant",
            )
        )


def _is_format_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.JoinedStr):
        return any(isinstance(v, ast.FormattedValue) for v in node.values)
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mod)
        and isinstance(node.left, ast.Constant)
        and isinstance(node.left.value, str)
    ):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
        and isinstance(node.func.value, ast.Constant)
        and isinstance(node.func.value.value, str)
    ):
        return True
    return False


def _conditional_use(load: ast.AST, assign: ast.Assign, parents: Dict[int, ast.AST]) -> bool:
    """Whether *load* sits on a branch the *assign* is not already on."""
    assign_line = {id(assign)}
    assign_line.update(id(a) for a in _ancestors(assign, parents))
    child: ast.AST = load
    for parent in _ancestors(load, parents):
        if isinstance(parent, ast.Raise):
            return True
        if isinstance(parent, (ast.If, ast.IfExp)) and id(parent) not in assign_line:
            if child is not parent.test:
                return True
        child = parent
    return False


def _check_eager_format(ctx: "_FunctionContext", findings: List[Finding]) -> None:
    func = ctx.func
    assigns: List[Tuple[str, ast.Assign]] = []
    stores: Dict[str, int] = {}
    for node in _body_walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            stores[node.id] = stores.get(node.id, 0) + 1
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_format_expr(node.value)
        ):
            assigns.append((node.targets[0].id, node))
    for name, assign in assigns:
        if stores.get(name, 0) != 1:
            continue  # rebound elsewhere; the dataflow is not obvious
        loads = [
            node
            for node in _body_walk(func)
            if isinstance(node, ast.Name) and node.id == name and isinstance(node.ctx, ast.Load)
        ]
        if loads and all(_conditional_use(load, assign, ctx.parents) for load in loads):
            findings.append(
                ctx.finding(
                    HOT_EAGER_FORMAT,
                    assign,
                    f"{name!r} is formatted every call but only used conditionally; "
                    "build it inside the branch that needs it",
                )
            )


def _returns_list(info: FunctionInfo) -> bool:
    for node in ast.walk(info.node):
        if isinstance(node, ast.Return) and node.value is not None:
            value = node.value
            if isinstance(value, (ast.ListComp, ast.List)):
                return True
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("list", "sorted")
            ):
                return True
    return False


def _peek_only_use(load: ast.Name, parents: Dict[int, ast.AST]) -> bool:
    """True when the use only needs the head/tail/length/truth of the list."""
    parent = parents.get(id(load))
    if isinstance(parent, ast.Subscript) and parent.value is load:
        return isinstance(parent.slice, (ast.Constant, ast.UnaryOp))
    if (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id == "len"
        and parent.args
        and parent.args[0] is load
    ):
        return True
    if isinstance(parent, (ast.If, ast.While)) and parent.test is load:
        return True
    if isinstance(parent, ast.IfExp) and parent.test is load:
        return True
    if isinstance(parent, ast.BoolOp):
        return True
    if isinstance(parent, ast.UnaryOp) and isinstance(parent.op, ast.Not):
        return True
    return False


def _check_linear_scans(ctx: "_FunctionContext", findings: List[Finding]) -> None:
    growing = ctx.growing_attrs
    # (a) membership tests against a growing list attribute.
    for node in _body_walk(ctx.func):
        if isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
        ):
            for comparator in node.comparators:
                attr = _self_attr(comparator)
                if attr in growing:
                    findings.append(
                        ctx.finding(
                            HOT_LINEAR_SCAN,
                            node,
                            f"membership test scans self.{attr}, which grows with event "
                            "count; use a set (or an index) for O(1) lookups",
                        )
                    )
        # (b) per-call sorted()/full iteration over a growing attribute.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
            and node.args
        ):
            target = node.args[0]
            attr = _self_attr(target)
            if attr is None and isinstance(target, ast.Call):
                attr = _self_attr(
                    target.func.value if isinstance(target.func, ast.Attribute) else target.func
                )
            if attr in growing:
                findings.append(
                    ctx.finding(
                        HOT_LINEAR_SCAN,
                        node,
                        f"sorted() over self.{attr} re-sorts the whole structure every "
                        "call; keep it ordered incrementally (heap/insort)",
                    )
                )
        if isinstance(node, ast.For):
            attr = _self_attr(node.iter)
            if attr in growing:
                findings.append(
                    ctx.finding(
                        HOT_LINEAR_SCAN,
                        node.iter,
                        f"full iteration over self.{attr} per call; it grows with event "
                        "count — iterate only the new tail or keep a running aggregate",
                    )
                )
    # (c) materializing a list-returning helper only to peek at it.
    _check_materialized_helpers(ctx, findings)


def _list_returning_call(ctx: "_FunctionContext", node: ast.AST) -> Optional[str]:
    if not isinstance(node, ast.Call):
        return None
    key = ctx.graph.resolve_callable(node.func, ctx.info.module, ctx.info.class_name)
    if key is None:
        return None
    callee = ctx.graph.functions[key]
    if _returns_list(callee):
        return callee.qualname
    return None


def _check_materialized_helpers(ctx: "_FunctionContext", findings: List[Finding]) -> None:
    func = ctx.func
    parents = ctx.parents
    stores: Dict[str, int] = {}
    for node in _body_walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            stores[node.id] = stores.get(node.id, 0) + 1
    for node in _body_walk(func):
        # Direct: len(self.helper(...)) / self.helper(...)[0].
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
            and node.args
        ):
            callee = _list_returning_call(ctx, node.args[0])
            if callee is not None:
                findings.append(
                    ctx.finding(
                        HOT_LINEAR_SCAN,
                        node,
                        f"{callee}() materializes a full list only to take len(); "
                        "count without building the list",
                    )
                )
        if isinstance(node, ast.Subscript) and isinstance(node.slice, (ast.Constant, ast.UnaryOp)):
            callee = _list_returning_call(ctx, node.value)
            if callee is not None:
                findings.append(
                    ctx.finding(
                        HOT_LINEAR_SCAN,
                        node,
                        f"{callee}() materializes a full list only to index one "
                        "element; short-circuit instead",
                    )
                )
        # Assigned once, then only peeked at (head/tail/len/truth).
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and stores.get(node.targets[0].id, 0) == 1
        ):
            callee = _list_returning_call(ctx, node.value)
            if callee is None:
                continue
            name = node.targets[0].id
            loads = [
                n
                for n in _body_walk(func)
                if isinstance(n, ast.Name) and n.id == name and isinstance(n.ctx, ast.Load)
            ]
            if loads and all(_peek_only_use(load, parents) for load in loads):
                findings.append(
                    ctx.finding(
                        HOT_LINEAR_SCAN,
                        node,
                        f"{name!r} materializes the full {callee}() list but is only "
                        "peeked at; short-circuit on the first match",
                    )
                )


def _memo_guarded(node: ast.AST, parents: Dict[int, ast.AST]) -> bool:
    """A None-check / not-check ancestor counts as a memoization guard."""
    for parent in _ancestors(node, parents):
        if isinstance(parent, (ast.If, ast.IfExp)):
            for sub in ast.walk(parent.test):
                if isinstance(sub, ast.Compare) and any(
                    isinstance(op, (ast.Is, ast.IsNot)) for op in sub.ops
                ):
                    return True
                if isinstance(sub, ast.UnaryOp) and isinstance(sub.op, ast.Not):
                    return True
    return False


def _check_heavy_calls(ctx: "_FunctionContext", findings: List[Finding]) -> None:
    for node in _body_walk(ctx.func):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolved_dotted(node.func)
        if resolved is None or not _is_heavy(resolved):
            continue
        if _under_raise(node, ctx.parents) or _memo_guarded(node, ctx.parents):
            continue
        findings.append(
            ctx.finding(
                HOT_UNMEMOIZED_HEAVY,
                node,
                f"{resolved}() runs per event with no memo guard; cache the result "
                "on an immutable carrier",
            )
        )


def _is_heavy(resolved: str) -> bool:
    return resolved in _HEAVY_CALLS or resolved.startswith(_HEAVY_PREFIXES)


def _has_slots(class_node: ast.ClassDef) -> bool:
    for stmt in class_node.body:
        if isinstance(stmt, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == "__slots__" for t in stmt.targets):
                return True
        elif (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            return True
    for decorator in class_node.decorator_list:
        if isinstance(decorator, ast.Call):
            name = decorator.func
            dec = name.attr if isinstance(name, ast.Attribute) else getattr(name, "id", None)
            if dec == "dataclass":
                for keyword in decorator.keywords:
                    if (
                        keyword.arg == "slots"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is True
                    ):
                        return True
    return False


def _slots_exempt(class_node: ast.ClassDef) -> bool:
    for base in class_node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if isinstance(name, str) and name.endswith(_SLOTLESS_BASES):
            return True
    return False


def _check_no_slots(ctx: "_FunctionContext", findings: List[Finding]) -> None:
    for node in _body_walk(ctx.func):
        if not isinstance(node, ast.Call):
            continue
        resolved = ctx.resolve_class(node.func)
        if resolved is None:
            continue
        class_node, class_name = resolved
        if _has_slots(class_node) or _slots_exempt(class_node):
            continue
        if _under_raise(node, ctx.parents):
            continue
        findings.append(
            ctx.finding(
                HOT_NO_SLOTS,
                node,
                f"{class_name} is instantiated per event but has no __slots__; "
                "each instance carries a dict (dataclasses: slots=True)",
            )
        )


def _check_ambient_relookups(ctx: "_FunctionContext", findings: List[Finding]) -> None:
    parents = ctx.parents
    # (a) module-attribute loads anywhere in a hot function: `heapq.heappop`
    # resolves the module global and its attribute on every call.
    seen_modules: Set[str] = set()
    for node in _body_walk(ctx.func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id in ctx.plain_modules
        ):
            parent = parents.get(id(node))
            if isinstance(parent, ast.Attribute):
                continue  # only report the full dotted chain once
            if isinstance(parent, ast.AnnAssign) and parent.annotation is node:
                continue
            resolved = f"{ctx.aliases.get(node.value.id, node.value.id)}.{node.attr}"
            if _is_heavy(resolved):
                continue  # HOT004's territory; one diagnosis per site
            if resolved in seen_modules:
                continue
            seen_modules.add(resolved)
            findings.append(
                ctx.finding(
                    HOT_AMBIENT_RELOOKUP,
                    node,
                    f"{resolved} is re-resolved on every call; bind it to a "
                    "module-level name at import",
                )
            )
    # (b) invariant self-attributes read repeatedly inside one loop.
    seen_attrs: Set[str] = set()
    for loop in _body_walk(ctx.func):
        if isinstance(loop, ast.For):
            region: List[ast.stmt] = list(loop.body) + list(loop.orelse)
        elif isinstance(loop, ast.While):
            region = list(loop.body) + list(loop.orelse)
        else:
            continue
        counts: Dict[str, List[ast.Attribute]] = {}
        nodes: List[ast.AST] = []
        for stmt in region:
            nodes.extend(ast.walk(stmt))
        if isinstance(loop, ast.While):
            nodes.extend(ast.walk(loop.test))
        for node in nodes:
            if not (isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)):
                continue
            attr = _self_attr(node)
            if attr is None or attr in ctx.mutated_attrs or attr in ctx.method_names:
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.Call) and parent.func is node:
                continue  # bound-method lookup; different optimization
            counts.setdefault(attr, []).append(node)
        for attr in sorted(counts):
            if len(counts[attr]) < 2 or attr in seen_attrs:
                continue
            seen_attrs.add(attr)
            first = min(counts[attr], key=lambda n: (n.lineno, n.col_offset))
            findings.append(
                ctx.finding(
                    HOT_AMBIENT_RELOOKUP,
                    first,
                    f"self.{attr} is invariant here but re-read {len(counts[attr])}x "
                    "per loop iteration scope; bind it to a local before the loop",
                )
            )


# -- orchestration ---------------------------------------------------------


class _FunctionContext:
    """Everything the per-rule checks need about one hot function."""

    def __init__(
        self,
        info: FunctionInfo,
        route: Tuple[str, ...],
        graph: CallGraph,
        class_table: Dict[Tuple[str, str], ast.ClassDef],
        plain_modules: Set[str],
    ) -> None:
        self.info = info
        self.func = info.node
        self.route = route
        self.graph = graph
        self.class_table = class_table
        self.plain_modules = plain_modules
        self.aliases = graph.aliases.get(info.module, {})
        self.parents = _parent_map(info.node)
        self.route_suffix = _route_str(route, graph)
        self.growing_attrs = self._class_growing_attrs()
        self.mutated_attrs = self._class_mutated_attrs()
        self.method_names = self._class_method_names()

    def finding(self, which, node: ast.AST, message: str) -> Finding:
        return Finding(
            which,
            self.info.path,
            getattr(node, "lineno", self.func.lineno),
            getattr(node, "col_offset", 0),
            f"{message} ({self.route_suffix})",
        )

    def _class_node(self) -> Optional[ast.ClassDef]:
        if self.info.class_name is None:
            return None
        return self.class_table.get((self.info.module, self.info.class_name))

    def _class_growing_attrs(self) -> Set[str]:
        class_node = self._class_node()
        if class_node is None:
            return set()
        grown: Set[str] = set()
        for node in ast.walk(class_node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _GROWTH_CALLS
            ):
                attr = _self_attr(node.func.value)
                if attr is not None:
                    grown.add(attr)
        return grown

    def _class_mutated_attrs(self) -> Set[str]:
        """self attributes stored outside __init__ (not loop-invariant)."""
        class_node = self._class_node()
        mutated: Set[str] = set()
        if class_node is None:
            scopes: List[ast.AST] = [self.func]
        else:
            scopes = [
                stmt
                for stmt in class_node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name != "__init__"
            ]
        for scope in scopes:
            for node in ast.walk(scope):
                if isinstance(node, ast.Attribute) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    attr = _self_attr(node)
                    if attr is not None:
                        mutated.add(attr)
        return mutated

    def _class_method_names(self) -> Set[str]:
        class_node = self._class_node()
        if class_node is None:
            return set()
        return {
            stmt.name
            for stmt in class_node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def resolved_dotted(self, func_expr: ast.AST) -> Optional[str]:
        """``mod.attr`` with the head resolved through import aliases."""
        if isinstance(func_expr, ast.Attribute) and isinstance(func_expr.value, ast.Name):
            head = func_expr.value.id
            return f"{self.aliases.get(head, head)}.{func_expr.attr}"
        if isinstance(func_expr, ast.Name):
            return self.aliases.get(func_expr.id)
        return None

    def resolve_class(self, expr: ast.AST) -> Optional[Tuple[ast.ClassDef, str]]:
        if isinstance(expr, ast.Name):
            name = expr.id
            node = self.class_table.get((self.info.module, name))
            if node is not None:
                return node, name
            imported = self.aliases.get(name)
            if imported and "." in imported:
                src_module, _, src_name = imported.rpartition(".")
                node = self.class_table.get((src_module, src_name))
                if node is not None:
                    return node, src_name
        elif isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            imported = self.aliases.get(expr.value.id)
            if imported:
                node = self.class_table.get((imported, expr.attr))
                if node is not None:
                    return node, expr.attr
        return None


_CHECKS = (
    _check_fresh_containers,
    _check_eager_format,
    _check_linear_scans,
    _check_heavy_calls,
    _check_no_slots,
    _check_ambient_relookups,
)


def _collect_classes(files: Sequence[SourceFile]) -> Dict[Tuple[str, str], ast.ClassDef]:
    table: Dict[Tuple[str, str], ast.ClassDef] = {}
    for source_file in files:
        if source_file.tree is None:
            continue
        for node in source_file.tree.body:
            if isinstance(node, ast.ClassDef):
                table[(source_file.module_name, node.name)] = node
    return table


def _plain_module_names(tree: ast.Module) -> Set[str]:
    """Names bound by plain ``import X [as Y]`` (module objects, not members)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
    return names


def run_with_manifest(
    files: Sequence[SourceFile],
    manifest_path: Optional[str] = None,
    max_k: int = DEFAULT_MAX_K,
) -> List[Finding]:
    """Run HOT001-006 over functions hot under the given manifest."""
    specs = load_manifest(manifest_path or DEFAULT_MANIFEST)
    return run_with_roots(files, specs, max_k)


def run_with_roots(
    files: Sequence[SourceFile],
    specs: Sequence[RootSpec],
    max_k: int = DEFAULT_MAX_K,
) -> List[Finding]:
    """Manifest-free entry point (tests pass RootSpecs directly)."""
    graph = build_call_graph(files)
    roots = resolve_roots(graph, specs)
    if not roots:
        return []
    hot = hot_functions(graph, roots, max_k)
    class_table = _collect_classes(files)
    plain_by_path: Dict[str, Set[str]] = {}
    for source_file in files:
        if source_file.tree is not None:
            plain_by_path[source_file.path] = _plain_module_names(source_file.tree)
    findings: List[Finding] = []
    for key in sorted(hot):
        info = graph.functions[key]
        ctx = _FunctionContext(
            info, hot[key], graph, class_table, plain_by_path.get(info.path, set())
        )
        for check in _CHECKS:
            check(ctx, findings)
    return findings


def run(files: Sequence[SourceFile]) -> List[Finding]:
    """Pass entry point with the shipped manifest and default budget."""
    return run_with_manifest(files, None, DEFAULT_MAX_K)


def make_pass(max_k: int, manifest_path: Optional[str] = None):
    """A Pass closure with a configured budget and manifest (``--hot-manifest``)."""

    def hotpath_pass(files: Sequence[SourceFile]) -> List[Finding]:
        return run_with_manifest(files, manifest_path, max_k)

    return hotpath_pass
