"""Unit tests for class factories, the COM runtime, and marshaling."""

import pytest

from repro.com.factory import ClassFactory
from repro.com.guids import guid_from_name
from repro.com.interfaces import declare_interface
from repro.com.marshal import ObjRef, estimate_wire_size, marshal_value, unmarshal_value
from repro.com.object import ComObject
from repro.com.runtime import ComRuntime
from repro.errors import ComError

from tests.conftest import make_world

IECHO = declare_interface("IEcho", ("Echo",))


class Echo(ComObject):
    IMPLEMENTS = (IECHO,)

    def Echo(self, value):
        return value


def make_runtime():
    world = make_world()
    system = world.add_machine("host")
    return world, ComRuntime(system, world.network)


# -- factory ------------------------------------------------------------------


def test_factory_creates_instances_and_counts():
    factory = ClassFactory(guid_from_name("clsid"), Echo, server_name="Echo")
    first = factory.CreateInstance()
    second = factory.CreateInstance()
    assert first is not second
    assert factory.instances_created == 2


def test_factory_rejects_non_com_producer():
    factory = ClassFactory(guid_from_name("clsid"), lambda: object())
    with pytest.raises(ComError):
        factory.CreateInstance()


def test_factory_lock_server():
    factory = ClassFactory(guid_from_name("clsid"), Echo)
    factory.LockServer(True)
    assert factory.locked
    factory.LockServer(False)
    assert not factory.locked


# -- runtime -----------------------------------------------------------------------


def test_register_and_create_by_progid():
    world, runtime = make_runtime()
    runtime.register_class("Test.Echo", Echo)
    instance = runtime.create_instance("Test.Echo")
    assert isinstance(instance, Echo)


def test_register_mirrors_into_nt_registry():
    world, runtime = make_runtime()
    clsid = runtime.register_class("Test.Echo", Echo)
    registry = runtime.system.registry
    assert registry.get_value(f"CLSID\\{clsid}", "ProgID") == "Test.Echo"
    assert registry.get_value("ProgID\\Test.Echo", "CLSID") == str(clsid)


def test_create_by_clsid():
    world, runtime = make_runtime()
    clsid = runtime.register_class("Test.Echo", Echo)
    assert isinstance(runtime.create_instance(clsid), Echo)


def test_unregister_removes_class_and_registry_keys():
    world, runtime = make_runtime()
    clsid = runtime.register_class("Test.Echo", Echo)
    runtime.unregister_class("Test.Echo")
    with pytest.raises(ComError):
        runtime.create_instance("Test.Echo")
    assert not runtime.system.registry.has_key(f"CLSID\\{clsid}")


def test_unknown_progid_rejected():
    world, runtime = make_runtime()
    with pytest.raises(ComError):
        runtime.create_instance("No.Such.Class")
    with pytest.raises(ComError):
        runtime.unregister_class("No.Such.Class")


# -- marshaling ----------------------------------------------------------------------


def test_marshal_plain_data_roundtrip():
    value = {"a": [1, 2.5, "s", None, True], "b": {"nested": (1, 2)}}
    copied = marshal_value(value)
    assert copied == {"a": [1, 2.5, "s", None, True], "b": {"nested": (1, 2)}}


def test_marshal_deep_copies():
    inner = [1, 2]
    copied = marshal_value({"list": inner})
    inner.append(3)
    assert copied["list"] == [1, 2]


def test_marshal_rejects_arbitrary_objects():
    class Custom:
        pass

    with pytest.raises(ComError):
        marshal_value(Custom())
    with pytest.raises(ComError):
        marshal_value({"ok": Custom()})


def test_marshal_rejects_exotic_dict_keys():
    with pytest.raises(ComError):
        marshal_value({(1, 2): "tuple key"})


def test_marshal_rejects_excessive_depth():
    value = current = []
    for _ in range(64):
        nested = []
        current.append(nested)
        current = nested
    with pytest.raises(ComError):
        marshal_value(value)


def test_objref_marshalable_and_supports():
    ref = ObjRef(node="n", oid=1, iids=(IECHO.iid,), label="echo")
    copied = marshal_value({"ref": ref})
    assert copied["ref"] == ref
    assert ref.supports(IECHO.iid)


def test_wire_size_grows_with_payload():
    small = estimate_wire_size({"a": 1})
    large = estimate_wire_size({"a": "x" * 10_000})
    assert large > small + 9_000


def test_unmarshal_is_deep_copy():
    original = {"k": [1]}
    received = unmarshal_value(original)
    original["k"].append(2)
    assert received == {"k": [1]}
