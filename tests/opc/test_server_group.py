"""Unit tests for the OPC server and group subscription machinery."""

import pytest

from repro.com.runtime import ComRuntime
from repro.errors import OpcError
from repro.opc.server import OpcServer, ServerState
from repro.opc.types import Quality

from tests.conftest import make_world


def make_server():
    world = make_world()
    system = world.add_machine("host")
    runtime = ComRuntime(system, world.network)
    server = OpcServer(runtime, "OPC.Test.1")
    for item_id in ("plc.temp", "plc.flow"):
        server.namespace.define_simple(item_id, 0.0)
    return world, server


def test_server_status_block():
    world, server = make_server()
    status = server.GetStatus()
    assert status["name"] == "OPC.Test.1"
    assert status["state"] == ServerState.NO_CONFIG.value
    server.update_item("plc.temp", 21.0)
    assert server.GetStatus()["state"] == ServerState.RUNNING.value
    assert server.GetStatus()["item_count"] == 2


def test_group_add_remove():
    world, server = make_server()
    server.AddGroup("g1")
    with pytest.raises(OpcError):
        server.AddGroup("g1")
    assert server.GetGroupByName("g1") is not None
    server.RemoveGroup("g1")
    with pytest.raises(OpcError):
        server.GetGroupByName("g1")
    with pytest.raises(OpcError):
        server.RemoveGroup("g1")


def test_group_add_items_validates_and_returns_handles():
    world, server = make_server()
    group = server.AddGroup("g")
    handles = group.AddItems(["plc.temp", "plc.flow"])
    assert len(handles) == len(set(handles)) == 2
    with pytest.raises(Exception):
        group.AddItems(["no.such.item"])


def test_sync_read_returns_wire_values():
    world, server = make_server()
    group = server.AddGroup("g")
    handles = group.AddItems(["plc.temp"])
    server.update_item("plc.temp", 33.3)
    values = group.SyncRead(handles)
    assert values[0]["value"] == 33.3
    assert values[0]["quality"] == "good"


def test_sync_read_unknown_handle_rejected():
    world, server = make_server()
    group = server.AddGroup("g")
    with pytest.raises(OpcError):
        group.SyncRead([999])


def test_data_change_callback_batched_at_update_rate():
    world, server = make_server()
    group = server.AddGroup("g", update_rate=100.0)
    handles = group.AddItems(["plc.temp"])
    batches = []
    group.SetDataCallback(lambda name, batch: batches.append((world.kernel.now, batch)))
    # Three rapid updates within one update period -> one batch.
    server.update_item("plc.temp", 1.0)
    server.update_item("plc.temp", 2.0)
    server.update_item("plc.temp", 3.0)
    world.run_for(150.0)
    assert len(batches) == 1
    _time, batch = batches[0]
    assert batch[0][2]["value"] == 3.0  # latest value wins within the batch


def test_inactive_group_suppresses_callbacks():
    world, server = make_server()
    group = server.AddGroup("g", update_rate=50.0)
    group.AddItems(["plc.temp"])
    batches = []
    group.SetDataCallback(lambda name, batch: batches.append(batch))
    group.SetActive(False)
    server.update_item("plc.temp", 1.0)
    world.run_for(200.0)
    assert batches == []
    group.SetActive(True)
    server.update_item("plc.temp", 2.0)
    world.run_for(200.0)
    assert len(batches) == 1


def test_deadband_suppresses_small_changes():
    world, server = make_server()
    group = server.AddGroup("g", update_rate=50.0, deadband=10.0)  # 10 %
    group.AddItems(["plc.temp"])
    batches = []
    group.SetDataCallback(lambda name, batch: batches.append(batch))
    server.update_item("plc.temp", 100.0)
    world.run_for(100.0)
    server.update_item("plc.temp", 101.0)  # ~1 % change: suppressed
    world.run_for(100.0)
    server.update_item("plc.temp", 150.0)  # big change: reported
    world.run_for(100.0)
    reported = [batch[0][2]["value"] for batch in batches]
    assert reported == [100.0, 150.0]


def test_deadband_quality_change_always_reported():
    world, server = make_server()
    group = server.AddGroup("g", update_rate=50.0, deadband=50.0)
    group.AddItems(["plc.temp"])
    batches = []
    group.SetDataCallback(lambda name, batch: batches.append(batch))
    server.update_item("plc.temp", 100.0)
    world.run_for(100.0)
    server.update_item("plc.temp", 100.0, quality=Quality.BAD_DEVICE_FAILURE)
    world.run_for(100.0)
    assert len(batches) == 2


def test_remove_items_stops_their_notifications():
    world, server = make_server()
    group = server.AddGroup("g", update_rate=50.0)
    handles = group.AddItems(["plc.temp", "plc.flow"])
    batches = []
    group.SetDataCallback(lambda name, batch: batches.append(batch))
    group.RemoveItems([handles[0]])
    server.update_item("plc.temp", 5.0)
    server.update_item("plc.flow", 6.0)
    world.run_for(100.0)
    assert len(batches) == 1
    assert batches[0][0][1] == "plc.flow"


def test_comm_failure_marks_everything_bad():
    world, server = make_server()
    server.update_item("plc.temp", 1.0)
    server.mark_comm_failure()
    assert server.GetStatus()["state"] == ServerState.FAILED.value
    assert server.namespace.read("plc.temp").quality is Quality.BAD_COMM_FAILURE
    server.resume()
    assert server.GetStatus()["state"] == ServerState.RUNNING.value


def test_write_vqt_through_device_hook():
    world, server = make_server()
    server.namespace.define_simple("plc.setpoint", 0.0, access="read_write")
    writes = []
    server.namespace.on_write("plc.setpoint", lambda item, value: writes.append(value))
    server.WriteVQT([("plc.setpoint", 55.0)])
    assert writes == [55.0]


def test_group_get_state():
    world, server = make_server()
    group = server.AddGroup("g", update_rate=250.0, deadband=5.0)
    group.AddItems(["plc.temp"])
    state = group.GetState()
    assert state == {
        "name": "g",
        "update_rate": 250.0,
        "deadband": 5.0,
        "active": True,
        "item_count": 1,
    }
