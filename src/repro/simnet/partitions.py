"""Network partition orchestration.

The paper's startup logic (§3.2) exists to "minimize the impact of network
failures (i.e., both nodes becomes the primary)".  Experiments exercising
that logic need controlled partitions; this controller applies and heals
them, optionally on a schedule.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.simnet.kernel import SimKernel
from repro.simnet.network import Network


class PartitionController:
    """Creates, schedules and heals partitions on a :class:`Network`."""

    def __init__(self, network: Network, kernel: Optional[SimKernel] = None) -> None:
        self.network = network
        self.kernel = kernel or network.kernel
        self.history: List[Tuple[float, str, str]] = []  # (time, link, action)

    def split(self, link_name: str, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Partition *link_name* so side_a and side_b cannot communicate."""
        groups: Dict[str, int] = {}
        for node in side_a:
            groups[node] = 0
        for node in side_b:
            groups[node] = 1
        self.network.set_partition(link_name, groups)
        # Append-only by design (see heal): bounded by the chaos schedule.
        self.history.append((self.kernel.now, link_name, "split"))  # oftt-lint: ok[unbounded-growth]
        self.network.trace.emit("net", link_name, "partition", groups=groups)

    def isolate(self, link_name: str, lonely: str) -> None:
        """Cut *lonely* off from every other member of the segment."""
        others = [m for m in self.network.links[link_name].members if m != lonely]
        self.split(link_name, [lonely], others)

    # A split and a heal scheduled for the same instant resolve in
    # schedule order by design; the shared history log is append-only.
    def heal(self, link_name: str) -> None:  # oftt-lint: ok[race-write-write]
        """Remove any partition on *link_name*."""
        self.network.set_partition(link_name, {})
        self.history.append((self.kernel.now, link_name, "heal"))  # oftt-lint: ok[unbounded-growth]
        self.network.trace.emit("net", link_name, "partition-healed")

    def split_all(self, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Partition every segment the same way (full network split)."""
        side_a = list(side_a)
        side_b = list(side_b)
        for link_name in self.network.links:
            self.split(link_name, side_a, side_b)

    def heal_all(self) -> None:
        """Heal every segment."""
        for link_name in self.network.links:
            self.heal(link_name)

    def schedule_split(self, at: float, link_name: str, side_a: Iterable[str], side_b: Iterable[str]) -> None:
        """Apply :meth:`split` at absolute simulated time *at*."""
        delay = max(0.0, at - self.kernel.now)
        self.kernel.schedule(delay, self.split, link_name, list(side_a), list(side_b))

    def schedule_heal(self, at: float, link_name: str) -> None:
        """Apply :meth:`heal` at absolute simulated time *at*."""
        delay = max(0.0, at - self.kernel.now)
        self.kernel.schedule(delay, self.heal, link_name)
