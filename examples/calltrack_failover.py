"""The paper's §4 demonstration, end to end.

Reconstructs Figure 3 (three PCs on an Ethernet: primary, backup,
test/interface) and Table 1 (OFTT engines + the Call Track application on
the pair; System Monitor, Telephone System Simulator and Calling History
generator on the test PC), then demonstrates continued operation through
all four §4 failures:

    a. node failure          b. NT crash (bluescreen)
    c. application failure   d. OFTT middleware failure

After each fault the failed element is repaired and the pair re-forms, as
in the live demo.  The busy-line histogram — the application's GUI — is
printed before and after, along with the System Monitor display.

Run:  python examples/calltrack_failover.py
"""

from repro.faults import AppCrash, BlueScreen, MiddlewareCrash, NodeFailure, NodeReboot
from repro.faults.campaign import Campaign
from repro.faults.injector import FaultInjector
from repro.harness.scenario import build_demo


def main() -> None:
    demo = build_demo(seed=2000)
    demo.start()
    print("Demonstration configuration up:")
    print(f"  pair: {demo.pair.node_names}, primary={demo.pair.primary_node()}")
    print(f"  test-pc: monitor + telephone simulator (5 lines, 10 callers)\n")

    demo.run_for(30_000.0)
    app = demo.primary_app()
    print(app.render_histogram())
    print()

    campaign = Campaign(demo.kernel, demo, settle_timeout=30_000.0)
    injector = FaultInjector(demo.kernel, demo)
    demo_faults = [
        ("a", "node failure", lambda node: NodeFailure(node)),
        ("b", "NT crash (bluescreen)", lambda node: BlueScreen(node)),
        ("c", "application failure", lambda node: AppCrash(node, "calltrack")),
        ("d", "OFTT middleware failure", lambda node: MiddlewareCrash(node)),
    ]

    for demo_id, label, make_fault in demo_faults:
        primary = demo.pair.primary_node()
        generated_before = demo.history.event_count
        print(f"--- demo ({demo_id}): {label} on {primary} ---")
        record = campaign.run_fault(make_fault(primary))
        survivor = demo.pair.primary_node()
        print(
            f"    continued operation: {record.recovered}"
            f"  (recovery {record.recovery_latency:.0f} ms,"
            f" {'switched to ' + survivor if record.switched_over else 'recovered in place'})"
        )
        # Repair before the next case.
        system = demo.systems[primary]
        if system.state.value in ("off", "bluescreen"):
            injector.inject_now(NodeReboot(primary, reinstall=True))
        elif not demo.pair.engines[primary].alive:
            demo.pair.reinstall_node(primary)
        demo.run_for(10_000.0)
        app = demo.primary_app()
        lost = demo.history.event_count - app.events_processed()
        print(f"    telephone events: generated={demo.history.event_count}, "
              f"tracked={app.events_processed()}, lost={lost}\n")

    print("Final histogram (survived four failures):")
    print(demo.primary_app().render_histogram())
    print()
    print(demo.monitor.render())


if __name__ == "__main__":
    main()
