"""Process-pool fan-out that is byte-identical to the serial run.

Every workload this executor carries (chaos schedules, replay subjects,
experiment scenarios, sweep grid points) is a *pure function of its
picklable arguments*: a task rebuilds its whole world (kernel, network,
RNG streams) from the seed it is handed, so where and when it executes
cannot change its result.  The executor adds the remaining guarantees:

* **Canonical merge order** — results come back in input order
  (:func:`parallel_map` is order-preserving), so reports rendered from
  the merged list serialize byte-identically to the serial run.
* **No ambient inheritance** — workers are started with the ``spawn``
  method: each is a fresh interpreter that re-imports the code and
  receives nothing from the parent beyond the pickled task arguments
  (no forked RNG state, no module-global mutations, no open handles).
* **Serial path untouched** — ``jobs=1`` never touches
  :mod:`multiprocessing` at all; it is a plain in-process loop, so the
  existing single-core gates behave exactly as before.

The worker pool is **persistent**: the first parallel call spawns it,
and every later call with the same worker count reuses it, so a command
that fans out many times (campaign then replay check, a sweep grid, the
bench suite) pays the spawn cost once instead of per call.  Reuse is
sound *because* of the purity contract above — the oftt-lint PURE001–004
pass rejects tasks that write module state, so a worker that already ran
ten tasks is indistinguishable from a fresh one.  (A task that mutated
its worker would already diverge from the serial run; pooling adds no
new failure mode, it just makes the existing contract load-bearing.)

Task functions must be module-level (pickled by reference) and their
arguments and results must be picklable.  Exceptions raised in a worker
propagate out of :func:`parallel_map` in the parent; a worker *crash*
(:class:`BrokenProcessPool`) tears the pool down so the next call starts
clean.
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from typing import Any, Callable, Iterable, List, Optional, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Start method used for worker processes.  ``spawn`` (not ``fork``)
#: is deliberate: a forked worker would inherit the parent's entire
#: address space — exactly the ambient state the determinism contract
#: forbids.  The cost is one interpreter start per worker, paid once
#: per process thanks to the persistent pool.
START_METHOD = "spawn"

#: Target chunks per worker when the caller lets chunksize default.
#: Larger chunks amortize IPC per task; a few chunks per worker keeps
#: the tail balanced when task durations vary.
_CHUNKS_PER_WORKER = 4

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0 means "one per CPU".

    This is the toolkit's one sanctioned ambient-host read: worker-count
    *defaults* may follow the hardware because they cannot change any
    result, only how fast it arrives (see PERF.md).
    """
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)  # oftt-lint: ok[ambient-io]
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, (re)spawned only when the worker count changes."""
    global _pool, _pool_workers
    if _pool is not None and _pool_workers != workers:
        _pool.shutdown(wait=True)
        _pool = None
    if _pool is None:
        _pool = ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context(START_METHOD)
        )
        _pool_workers = workers
    return _pool


def shutdown_pool() -> None:
    """Tear down the persistent pool (idempotent; next call respawns).

    Registered via :mod:`atexit` so interpreter shutdown never leaves
    spawn workers behind; tests and benchmarks may also call it directly
    to measure or isolate cold-start behaviour.
    """
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_pool)


def warm_pool(jobs: Optional[int]) -> int:
    """Pre-spawn the pool for *jobs* workers; returns the worker count.

    Spawning interpreters is the executor's only non-amortized cost, so
    latency-sensitive callers (and honest benchmarks, which must not
    blame steady-state throughput for one-time startup) can front-load
    it.  A no-op for the serial path.
    """
    workers = resolve_jobs(jobs)
    if workers > 1:
        pool = _get_pool(workers)
        list(pool.map(_noop_task, range(workers)))
    return workers


def _noop_task(_: int) -> None:
    """Minimal picklable task used to force worker startup."""
    return None


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int = 1,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Apply *fn* to every item, fanning out over *jobs* worker processes.

    Results are returned in input order regardless of completion order
    or chunking, which is what makes the merged output independent of
    worker count.  With ``jobs=1`` (the default) this is a plain serial
    loop.  *chunksize* defaults to a few chunks per worker; any value
    yields the same results in the same order.
    """
    tasks: List[T] = list(items)
    workers = resolve_jobs(jobs)
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    if chunksize is None:
        chunksize = max(1, len(tasks) // (workers * _CHUNKS_PER_WORKER))
    # The pool is sized by *jobs*, not by this call's task count: a
    # short task list leaves workers idle rather than respawning a
    # smaller pool (pool identity is what makes reuse pay).
    pool = _get_pool(workers)
    try:
        return list(pool.map(fn, tasks, chunksize=chunksize))
    except BrokenProcessPool:
        # A worker died mid-task (OOM-kill, segfaulting C extension, …).
        # The pool object is unusable from here on; drop it so the next
        # parallel_map starts from a clean spawn instead of failing.
        shutdown_pool()
        raise


def add_jobs_argument(parser: Any, default: int = 1) -> None:
    """Attach the standard ``--jobs`` option to an argparse parser."""
    parser.add_argument(
        "--jobs", type=int, default=default, metavar="N",
        help="worker processes for independent runs; 0 = one per CPU "
             f"(default: {default}; output is byte-identical for any value)",
    )
