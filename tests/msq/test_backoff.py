"""Retry backoff tests: delay math, determinism, and the partition regression."""

import pytest

from repro.core.config import OfttConfig
from repro.errors import MsqError
from repro.msq.manager import QueueManager
from repro.simnet.random import RngStreams

from tests.conftest import make_world
from tests.core.util import make_pair_world


def make_sender(world, **kwargs):
    return QueueManager(world.kernel, world.network, world.network.nodes["sender"], **kwargs)


def make_pair_of_nodes(seed=0):
    world = make_world(seed=seed)
    for name in ("sender", "receiver"):
        world.add_machine(name)
    return world


# ---------------------------------------------------------------------------
# Delay math


def test_capped_exponential_delays():
    world = make_pair_of_nodes()
    sender = make_sender(
        world, retry_interval=250.0, backoff_factor=2.0, max_retry_interval=2_000.0
    )
    delays = [sender._retry_delay(attempt) for attempt in range(1, 7)]
    assert delays == [250.0, 500.0, 1_000.0, 2_000.0, 2_000.0, 2_000.0]


def test_backoff_factor_one_reproduces_fixed_cadence():
    world = make_pair_of_nodes()
    sender = make_sender(world, retry_interval=250.0, backoff_factor=1.0)
    assert [sender._retry_delay(attempt) for attempt in (1, 5, 50)] == [250.0] * 3


def test_jitter_is_bounded_and_seed_deterministic():
    def delays_for(seed):
        world = make_pair_of_nodes(seed=seed)
        sender = make_sender(
            world,
            retry_interval=250.0,
            backoff_factor=2.0,
            max_retry_interval=2_000.0,
            retry_jitter=50.0,
            rng=RngStreams(seed).stream("test.backoff"),
        )
        return [sender._retry_delay(attempt) for attempt in range(1, 6)]

    first, second = delays_for(7), delays_for(7)
    assert first == second
    assert first != delays_for(8)
    base = [250.0, 500.0, 1_000.0, 2_000.0, 2_000.0]
    for value, floor in zip(first, base):
        assert floor <= value <= floor + 50.0


def test_constructor_validation():
    world = make_pair_of_nodes()
    with pytest.raises(MsqError):
        make_sender(world, backoff_factor=0.5)
    with pytest.raises(MsqError):
        make_sender(world, retry_jitter=-1.0)
    with pytest.raises(MsqError):
        make_sender(world, retry_interval=500.0, max_retry_interval=250.0)


def test_config_validation():
    OfttConfig().validate()  # defaults are coherent
    with pytest.raises(ValueError):
        OfttConfig(msq_retry_backoff=0.9).validate()
    with pytest.raises(ValueError):
        OfttConfig(msq_retry_jitter=-5.0).validate()
    with pytest.raises(ValueError):
        OfttConfig(msq_retry_interval=250.0, msq_retry_max_interval=100.0).validate()
    with pytest.raises(ValueError):
        OfttConfig(msq_retry_interval=0.0).validate()


def test_pair_wires_config_into_queue_managers():
    config = OfttConfig(
        msq_retry_interval=111.0,
        msq_retry_backoff=3.0,
        msq_retry_max_interval=999.0,
        msq_retry_jitter=7.0,
    )
    world = make_pair_world(config=config)
    for name in ("alpha", "beta"):
        qmgr = world.pair.contexts[name].qmgr
        assert qmgr.retry_interval == 111.0
        assert qmgr.backoff_factor == 3.0
        assert qmgr.max_retry_interval == 999.0
        assert qmgr.retry_jitter == 7.0


# ---------------------------------------------------------------------------
# Regression: sustained partition must not be hammered at a fixed rate.


def transmits_under_partition(backoff_factor, max_retry_interval, jitter=0.0):
    world = make_pair_of_nodes()
    sender = make_sender(
        world,
        retry_interval=250.0,
        backoff_factor=backoff_factor,
        max_retry_interval=max_retry_interval,
        retry_jitter=jitter,
        message_ttl=120_000.0,
    )
    QueueManager(
        world.kernel, world.network, world.network.nodes["receiver"]
    ).create_queue("inbox")
    world.partitions.split_all(["sender"], ["receiver"])
    sender.send("receiver", "inbox", "stuck")
    world.run_for(30_000.0)
    assert sender.pending_count() == 1  # still parked, not dead-lettered
    (entry,) = sender.outgoing.values()
    return entry.attempts


def test_backoff_sends_far_less_under_sustained_partition():
    fixed = transmits_under_partition(backoff_factor=1.0, max_retry_interval=250.0)
    backed_off = transmits_under_partition(backoff_factor=2.0, max_retry_interval=2_000.0)
    assert fixed >= 100  # ~30s / 250ms of futile wire traffic
    assert backed_off <= fixed / 4
    # Jitter must not change the order of magnitude.
    jittered = transmits_under_partition(
        backoff_factor=2.0, max_retry_interval=2_000.0, jitter=25.0
    )
    assert jittered <= fixed / 4


def test_backed_off_message_still_delivers_after_heal():
    world = make_pair_of_nodes()
    sender = make_sender(
        world, retry_interval=250.0, backoff_factor=2.0, max_retry_interval=2_000.0
    )
    receiver = QueueManager(world.kernel, world.network, world.network.nodes["receiver"])
    receiver.create_queue("inbox")
    world.partitions.split_all(["sender"], ["receiver"])
    sender.send("receiver", "inbox", "late but safe")
    world.run_for(15_000.0)
    world.partitions.heal_all()
    world.run_for(5_000.0)
    assert sender.pending_count() == 0
    assert receiver.open_queue("inbox").receive().body == "late but safe"
