"""Chaos-harness coverage for replication-strategy campaigns.

The monitor suite must be strategy-aware: the replica-freshness monitor
only arms under leader-follower (and catches a sabotaged update stream),
the split-brain monitor's DR check only applies when a DR site exists,
and campaign tasks carry an optional config through the executor.
"""

from __future__ import annotations

from repro.chaos.cli import campaign
from repro.chaos.runner import SABOTAGES, run_schedule, run_schedule_task
from repro.chaos.schedule import ChaosSchedule, FaultEntry
from repro.core.config import OfttConfig, replace_config


def _lf_config():
    return replace_config(OfttConfig(), replication_strategy="leader-follower")


def _quiet_schedule(horizon=15_000.0):
    return ChaosSchedule(entries=[], horizon=horizon)


def test_drop_state_updates_sabotage_registered():
    assert "drop-state-updates" in SABOTAGES


def test_replica_freshness_catches_dropped_update_stream():
    result = run_schedule(
        0, _quiet_schedule(), sabotage_name="drop-state-updates", config=_lf_config()
    )
    assert "replica-freshness" in result.violation_names()


def test_replica_freshness_inert_under_cold_passive():
    # The same sabotage under the default strategy: no update-stream
    # promise to break, so the monitor must stay silent (and nothing
    # else fires on a fault-free run).
    result = run_schedule(0, _quiet_schedule(), sabotage_name="drop-state-updates")
    assert result.passed


def test_healthy_leader_follower_run_is_clean():
    result = run_schedule(0, _quiet_schedule(), config=_lf_config())
    assert result.passed


def test_run_schedule_task_accepts_config_tuple():
    schedule = _quiet_schedule(horizon=10_000.0)
    three = run_schedule_task((0, schedule, ""))
    four = run_schedule_task((0, schedule, "", None))
    assert three.as_wire() == four.as_wire()

    lf = run_schedule_task((0, schedule, "", _lf_config()))
    assert lf.passed


def test_campaign_with_config_runs_under_strategy():
    dr_config = replace_config(OfttConfig(), replication_strategy="log-replay-dr")
    results = campaign(1, 1, 0, config=dr_config)
    assert len(results) == 1
    assert results[0].passed


def test_total_pair_loss_with_dr_violates_no_invariant():
    # The DR site activating on genuine total pair loss is legitimate —
    # the split-brain DR check must only fire on activation *alongside*
    # a serving, reachable primary.
    schedule = ChaosSchedule(
        entries=[
            FaultEntry(8_000.0, "node-failure", {"node": "alpha"}),
            FaultEntry(8_050.0, "node-failure", {"node": "beta"}),
        ],
        horizon=20_000.0,
    )
    dr_config = replace_config(OfttConfig(), replication_strategy="log-replay-dr")
    result = run_schedule(0, schedule, config=dr_config)
    assert result.passed
