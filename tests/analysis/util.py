"""Helpers for the analysis self-tests: run passes over inline snippets."""

from __future__ import annotations

import ast
import textwrap
from typing import List, Sequence

from repro.analysis.findings import Finding
from repro.analysis.suppress import parse_suppressions
from repro.analysis.walker import Pass, SourceFile, run_passes


def make_file(source: str, path: str = "snippet.py") -> SourceFile:
    """Build a SourceFile from an inline snippet (dedented)."""
    source = textwrap.dedent(source)
    return SourceFile(path, source, ast.parse(source, filename=path), parse_suppressions(path, source))


def analyze(source: str, *passes: Pass, path: str = "snippet.py") -> List[Finding]:
    """Run *passes* over one snippet, suppressions applied."""
    return run_passes([make_file(source, path)], list(passes))


def rule_ids(findings: Sequence[Finding]) -> List[str]:
    """The rule ids of *findings*, in report order."""
    return [finding.rule.rule_id for finding in findings]
