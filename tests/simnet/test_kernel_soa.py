"""Property tests for the struct-of-arrays calendar queue.

The kernel's SoA layout (parallel time/seq columns, calendar buckets,
free-list slot reuse, lazy cancellation by seq sign) is checked against
a brute-force reference: a plain ``(time, seq)`` heap with a cancelled
set.  Randomized seeded operation sequences — schedule bursts with
deliberate timestamp collisions, cancels of live/fired/stale handles,
partial ``run(until=...)`` windows — must fire identically on both.

Pickle and deepcopy round-trips are exercised on awkward intermediate
states: lazily-cancelled slots awaiting compaction, and a kernel frozen
mid-bucket by a raising callback.
"""

from __future__ import annotations

import copy
import heapq
import pickle
import random
from typing import List, Optional, Tuple

import pytest

from repro.simnet.kernel import SimKernel

# Module-level sink so scheduled callbacks stay picklable by reference
# (pickled kernels must round-trip with their callbacks attached).
_SINK: List[int] = []


def _record(label: int) -> None:
    _SINK.append(label)


def _boom() -> None:
    raise RuntimeError("mid-bucket abort")


class ReferenceKernel:
    """Brute-force model: one big ``(time, seq, label)`` heap."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = 0
        self._cancelled: set = set()
        self._fired: set = set()

    def schedule(self, delay: float, label: int) -> int:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, label))
        return self._seq

    def cancel(self, handle: int) -> None:
        if handle not in self._fired:
            self._cancelled.add(handle)

    @property
    def pending(self) -> int:
        return sum(1 for _, seq, _ in self._heap if seq not in self._cancelled)

    def run(self, fired: List[Tuple[float, int]], until: Optional[float] = None) -> None:
        while self._heap:
            time, seq, label = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            if seq in self._cancelled:
                continue
            self._fired.add(seq)
            self.now = time
            fired.append((time, label))
        if until is not None and self.now < until:
            self.now = until


#: Small delay pool so collisions (shared calendar buckets) are common.
_DELAYS = [0.0, 0.5, 1.0, 1.0, 2.5, 3.0, 3.0, 7.0, 11.0, 40.0]


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("compact_min", [16, 10 ** 9], ids=["compacting", "lazy-only"])
def test_randomized_ops_match_reference_heap(seed, compact_min):
    rng = random.Random(seed)
    kernel = SimKernel()
    kernel.COMPACT_MIN_SIZE = compact_min
    reference = ReferenceKernel()
    kernel_fired: List[Tuple[float, int]] = []
    reference_fired: List[Tuple[float, int]] = []
    handles: List[Tuple[int, int]] = []  # (kernel handle, reference handle)
    label = 0

    for _step in range(400):
        op = rng.random()
        if op < 0.55:
            delay = rng.choice(_DELAYS)
            label += 1
            handles.append((
                kernel.schedule(delay, lambda l=label: kernel_fired.append((kernel.now, l))),
                reference.schedule(delay, label),
            ))
        elif op < 0.85 and handles:
            k_handle, r_handle = rng.choice(handles)  # may be live, fired, or stale
            kernel.cancel(k_handle)
            reference.cancel(r_handle)
            assert kernel.pending == reference.pending
        elif op < 0.95:
            until = kernel.now + rng.choice(_DELAYS)
            kernel.run(until=until)
            reference.run(reference_fired, until=until)
            assert kernel.now == reference.now
            assert kernel_fired == reference_fired
        else:
            kernel.run()
            reference.run(reference_fired)
            assert kernel.pending == reference.pending == 0

    kernel.run()
    reference.run(reference_fired)
    assert kernel_fired == reference_fired
    assert kernel.pending == reference.pending == 0


def _drain_labels(kernel: SimKernel) -> List[int]:
    """Run *kernel* to empty, collecting labels from _record calls."""
    del _SINK[:]
    kernel.run()
    return list(_SINK)


def _build_lazy_cancelled_kernel() -> SimKernel:
    kernel = SimKernel()  # default COMPACT_MIN_SIZE: 300 cancels stay lazy
    handles = [kernel.schedule(float((i * 13) % 37), _record, i) for i in range(600)]
    for handle in handles[::2]:
        kernel.cancel(handle)
    return kernel


def test_pickle_roundtrip_with_pending_compaction_debt():
    kernel = _build_lazy_cancelled_kernel()
    clone = pickle.loads(pickle.dumps(kernel))
    assert clone.pending == kernel.pending == 300
    expected = _drain_labels(kernel)
    assert _drain_labels(clone) == expected
    assert clone.now == kernel.now


def test_deepcopy_roundtrip_with_pending_compaction_debt():
    kernel = _build_lazy_cancelled_kernel()
    clone = copy.deepcopy(kernel)
    expected = _drain_labels(kernel)
    assert _drain_labels(clone) == expected


def test_pickle_roundtrip_of_mid_bucket_kernel():
    """A kernel aborted inside a bucket must resume identically after pickling."""
    kernel = SimKernel()
    for i in range(6):
        kernel.schedule(5.0, _record, i)  # one shared bucket
    kernel.schedule(5.0, _boom)
    for i in range(6, 12):
        kernel.schedule(5.0, _record, i)
    kernel.schedule(9.0, _record, 99)
    del _SINK[:]
    with pytest.raises(RuntimeError, match="mid-bucket abort"):
        kernel.run()
    assert _SINK == [0, 1, 2, 3, 4, 5]
    clone = pickle.loads(pickle.dumps(kernel))
    assert clone.pending == kernel.pending
    resumed = _drain_labels(clone)
    assert resumed == list(range(6, 12)) + [99]
    assert clone.now == 9.0


def test_pickle_after_drain_drops_consumed_references():
    """Fired slots keep refs in memory, but never reach a pickle.

    The drain loop deliberately leaves consumed slots' callback/args in
    place (overwritten on reuse); __getstate__ prunes them, which is
    also what lets a kernel that ran unpicklable callbacks be pickled
    afterwards.
    """
    kernel = SimKernel()
    kernel.schedule(1.0, lambda: None)  # unpicklable on purpose
    kernel.run()
    clone = pickle.loads(pickle.dumps(kernel))  # must not choke on the lambda
    assert clone.pending == 0
    clone.schedule(1.0, _record, 7)
    del _SINK[:]
    clone.run()
    assert _SINK == [7]
