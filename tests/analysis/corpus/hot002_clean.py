"""Clean twin of hot002: the string is built inside the branch that uses it."""


class Hot:
    def __init__(self):
        self.errors = []

    def run(self, item):
        if item < 0:
            self.errors.append(f"item {item} out of range")
        return item
