"""Smoke and shape tests for the detector and strategy sweeps."""

from __future__ import annotations

from repro.perf.sweep import (
    evaluate_strategy_task,
    render_rows,
    STRATEGY_SCENARIOS,
    sweep_detectors,
)


def small_sweep():
    return sweep_detectors(thresholds=[1, 2], timeouts=[500.0], seeds=1, schedules=2)


def test_rows_follow_grid_order_and_shape():
    rows = small_sweep()
    assert [(row["miss_threshold"], row["timeout_ms"]) for row in rows] == [(1, 500.0), (2, 500.0)]
    for row in rows:
        assert row["runs"] == 2
        assert row["detected"] + row["missed"] == row["faults"]
        assert row["false_positives"] >= 0
        if row["detected"]:
            assert row["mean_latency_ms"] <= row["max_latency_ms"]
        else:
            assert row["mean_latency_ms"] is None


def test_higher_threshold_never_detects_faster():
    rows = small_sweep()
    fast, slow = rows[0], rows[1]
    if fast["detected"] and slow["detected"]:
        assert slow["mean_latency_ms"] >= fast["mean_latency_ms"]


def test_strategy_sweep_total_pair_loss_contrast():
    # The headline comparison: only log-replay-dr survives losing both
    # pair nodes — cold-passive has nobody left to recover anything.
    name, entries = STRATEGY_SCENARIOS[1]
    assert name == "total-pair-loss"
    cold = evaluate_strategy_task(("cold-passive", name, entries, 0))
    assert cold["recovered_by"] == "none"
    assert cold["applied"] == 0
    assert cold["lost"] == cold["sent"]

    dr = evaluate_strategy_task(("log-replay-dr", name, entries, 0))
    assert dr["recovered_by"] == "dr"
    assert dr["lost"] == 0
    assert dr["replayed"] > 0
    assert dr["recovery_ms"] is not None


def test_strategy_sweep_leader_follower_narrows_checkpoint_gap():
    name, entries = STRATEGY_SCENARIOS[0]
    assert name == "primary-crash"
    cold = evaluate_strategy_task(("cold-passive", name, entries, 0))
    lf = evaluate_strategy_task(("leader-follower", name, entries, 0))
    assert cold["recovered_by"] == lf["recovered_by"] == "pair"
    # Cold-passive replays into its 2s checkpoint gap; the update stream
    # loses at most the in-flight tail.
    assert lf["lost"] <= 2
    assert cold["lost"] > lf["lost"]


def test_render_rows_text_and_markdown():
    rows = small_sweep()
    text = render_rows(rows)
    assert text.splitlines()[0].startswith("miss_threshold")
    markdown = render_rows(rows, markdown=True)
    lines = markdown.splitlines()
    assert lines[0].startswith("| miss_threshold")
    assert set(lines[1]) <= {"|", "-"}
    assert len(lines) == 2 + len(rows)


# -- policy sweep -----------------------------------------------------------


def test_policy_sweep_rows_shape_and_order():
    from repro.perf.sweep import POLICY_NAMES, sweep_policies

    rows = sweep_policies(profiles=["crashy"], seeds=1)
    assert [row["policy"] for row in rows] == POLICY_NAMES
    for row in rows:
        assert row["profile"] == "crashy"
        assert row["faults"] > 0
        assert row["mean_recovery_ms"] is not None
        assert row["spurious_failovers"] >= 0


def test_policy_sweep_only_adaptive_switches_strategies():
    from repro.perf.sweep import sweep_policies

    # Gray is the switch-provoking profile: peer-gap evidence is seen by
    # both engines, so the serving primary reaches a hot-standby regime.
    rows = sweep_policies(profiles=["gray"], seeds=1)
    by_policy = {row["policy"]: row for row in rows}
    assert by_policy["adaptive"]["strategy_switches"] > 0
    assert all(
        row["strategy_switches"] == 0
        for name, row in by_policy.items()
        if name != "adaptive"
    )


def test_policy_gate_passes_on_dominant_adaptive_and_fails_otherwise():
    from repro.perf.sweep import policy_gate

    def row(policy, mean, spurious):
        return {
            "profile": "mixed",
            "policy": policy,
            "mean_recovery_ms": mean,
            "spurious_failovers": spurious,
        }

    good = [row("static-default", 150.0, 2), row("adaptive", 100.0, 0)]
    assert policy_gate(good) == []
    slow = [row("static-default", 90.0, 2), row("adaptive", 100.0, 0)]
    assert any("not below" in failure for failure in policy_gate(slow))
    trigger_happy = [row("static-default", 150.0, 0), row("adaptive", 100.0, 1)]
    assert any("spurious" in failure for failure in policy_gate(trigger_happy))
    assert policy_gate([row("static-default", 150.0, 0)]) == ["no adaptive row for profile 'mixed'"]


def test_policy_task_is_deterministic():
    from repro.perf.sweep import evaluate_policy_task

    first = evaluate_policy_task(("adaptive", "crashy", 0))
    second = evaluate_policy_task(("adaptive", "crashy", 0))
    assert first == second
