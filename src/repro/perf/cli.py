"""Command-line driver: ``python -m repro.perf`` / ``oftt-perf``.

Two subcommands:

* ``check-chaos`` — the parallel-equivalence gate used by
  ``make verify``: run one small chaos campaign serially and again at
  ``--jobs N`` and require the rendered ``repro.chaos/v1`` JSON (and the
  text report) to be byte-identical.  Exit 0 on equality, 1 on any
  difference, 2 on usage error.
* ``sweep`` — the detector-sensitivity sweep
  (``heartbeat_miss_threshold`` x ``heartbeat_timeout`` over a fixed set
  of chaos schedules); prints the table EXPERIMENTS.md publishes.

Examples::

    python -m repro.perf check-chaos --seeds 2 --schedules 2 --jobs 2
    oftt-perf sweep --seeds 4 --schedules 3 --jobs 0 --markdown
    oftt-perf sweep --policies --seeds 3 --jobs 0 --markdown --gate
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

# oftt-lint: file-ok[ambient-io] -- the perf driver is a host-side CLI.
from repro.chaos.report import render_json, render_text
from repro.perf.executor import add_jobs_argument
from repro.perf.sweep import (
    DEFAULT_THRESHOLDS,
    DEFAULT_TIMEOUTS,
    policy_gate,
    render_rows,
    sweep_detectors,
    sweep_policies,
    sweep_strategies,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oftt-perf",
        description="Parallel-equivalence gate and parameter sweeps for the OFTT toolkit.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check-chaos",
        help="run a campaign serially and at --jobs N; require byte-identical reports",
    )
    check.add_argument("--seeds", type=int, default=2, help="seeds to campaign over (default: 2)")
    check.add_argument("--schedules", type=int, default=2, help="schedules per seed (default: 2)")
    check.add_argument("--seed-base", type=int, default=0, help="first seed value (default: 0)")
    add_jobs_argument(check, default=2)

    sweep = commands.add_parser(
        "sweep",
        help="detector-sensitivity sweep (miss threshold x timeout over chaos schedules)",
    )
    sweep.add_argument("--seeds", type=int, default=4, help="seeds to sweep over (default: 4)")
    sweep.add_argument("--schedules", type=int, default=3, help="schedules per seed (default: 3)")
    sweep.add_argument("--seed-base", type=int, default=0, help="first seed value (default: 0)")
    sweep.add_argument("--thresholds", default="", metavar="N,N,...",
                       help=f"miss thresholds to sweep (default: {DEFAULT_THRESHOLDS})")
    sweep.add_argument("--timeouts", default="", metavar="MS,MS,...",
                       help=f"heartbeat timeouts in ms (default: {DEFAULT_TIMEOUTS})")
    sweep.add_argument("--strategies", action="store_true",
                       help="sweep replication strategies over fixed fault stories "
                            "instead of the detector grid")
    sweep.add_argument("--policies", action="store_true",
                       help="sweep recovery policies (static rules vs the adaptive layer) "
                            "over drifting fault-mix schedules")
    sweep.add_argument("--profiles", default="", metavar="NAME,NAME,...",
                       help="drift profiles for --policies (default: all)")
    sweep.add_argument("--gate", action="store_true",
                       help="with --policies: exit 1 unless adaptive beats every static "
                            "policy on the 'mixed' profile")
    sweep.add_argument("--markdown", action="store_true", help="emit a markdown table")
    sweep.add_argument("--out", default="", help="also write the table to this file")
    add_jobs_argument(sweep)
    return parser


def check_chaos(seeds: int, schedules: int, seed_base: int, jobs: int) -> int:
    """Byte-equality of a campaign across worker counts; exit-style int."""
    from repro.chaos.cli import campaign  # late import: keeps --help fast

    serial = campaign(seeds, schedules, seed_base, jobs=1)
    parallel = campaign(seeds, schedules, seed_base, jobs=jobs)
    checks = [
        ("json", render_json(serial), render_json(parallel)),
        ("text", render_text(serial), render_text(parallel)),
    ]
    failed = [name for name, first, second in checks if first != second]
    runs = seeds * schedules
    if failed:
        print(f"check-chaos: {runs} run(s), jobs={jobs}: DIVERGED in {', '.join(failed)} report(s)")
        for name, first, second in checks:
            if first != second:
                for line_a, line_b in zip(first.splitlines(), second.splitlines()):
                    if line_a != line_b:
                        print(f"  first {name} difference:\n    serial:   {line_a}\n    parallel: {line_b}")
                        break
        return 1
    print(f"check-chaos: {runs} run(s) byte-identical at --jobs 1 and --jobs {jobs}")
    return 0


def _parse_values(raw: str, cast) -> Optional[list]:
    if not raw.strip():
        return None
    return [cast(token.strip()) for token in raw.split(",") if token.strip()]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.command == "check-chaos":
        if options.seeds < 1 or options.schedules < 1:
            print("oftt-perf: --seeds and --schedules must be positive", file=sys.stderr)
            return 2
        return check_chaos(options.seeds, options.schedules, options.seed_base, options.jobs)

    gate_failures = []
    if options.policies:
        profiles = _parse_values(options.profiles, str)
        rows = sweep_policies(
            profiles=profiles,
            seeds=options.seeds,
            seed_base=options.seed_base,
            jobs=options.jobs,
        )
        if options.gate:
            gate_failures = policy_gate(rows)
    elif options.strategies:
        rows = sweep_strategies(seeds=options.seeds, seed_base=options.seed_base, jobs=options.jobs)
    else:
        try:
            thresholds = _parse_values(options.thresholds, int)
            timeouts = _parse_values(options.timeouts, float)
        except ValueError as exc:
            print(f"oftt-perf: bad sweep axis value ({exc})", file=sys.stderr)
            return 2
        rows = sweep_detectors(
            thresholds=thresholds,
            timeouts=timeouts,
            seeds=options.seeds,
            schedules=options.schedules,
            seed_base=options.seed_base,
            jobs=options.jobs,
        )
    rendered = render_rows(rows, markdown=options.markdown) + "\n"
    sys.stdout.write(rendered)
    if options.out:
        with open(options.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    if gate_failures:
        for failure in gate_failures:
            print(f"policy-gate: {failure}", file=sys.stderr)
        return 1
    if options.policies and options.gate:
        print("policy-gate: adaptive dominates every static policy on 'mixed'")
    return 0


if __name__ == "__main__":
    sys.exit(main())
