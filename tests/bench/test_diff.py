"""Tests for ``oftt-bench diff``: regression gating over saved reports."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import diff
from repro.bench.cli import main

BASE = {
    "schema": "repro.bench/v1",
    "profile": "quick",
    "jobs": 2,
    "host": {"cpu_count": 4, "platform": "linux", "python": "3.11.7"},
    "benches": [
        {
            "name": "kernel-events",
            "work": {"scheduled": 1000, "fired": 666, "drained": True},
            "measured": {"events_per_s": 1000.0, "wall_s": 1.0},
        },
        {
            "name": "chaos-campaign",
            "work": {"runs": 10, "byte_identical": True},
            "measured": {"speedup": 2.0, "parallel_wall_s": 5.0},
        },
    ],
}


def write_report(path, report):
    path.write_text(json.dumps(report) + "\n", encoding="utf-8")
    return str(path)


def variant(**measured_updates):
    """BASE with some measured metrics replaced (bench.key=value)."""
    report = copy.deepcopy(BASE)
    for spec, value in measured_updates.items():
        bench_name, _, key = spec.partition("__")
        bench_name = bench_name.replace("_", "-")
        for bench in report["benches"]:
            if bench["name"] == bench_name:
                bench["measured"][key] = value
    return report


def run_diff(tmp_path, old, new, *extra):
    old_path = write_report(tmp_path / "BENCH_1.json", old)
    new_path = write_report(tmp_path / "BENCH_2.json", new)
    return main(["diff", old_path, new_path, *extra])


# -- metric gating --------------------------------------------------------


def test_identical_reports_pass(tmp_path, capsys):
    assert run_diff(tmp_path, BASE, copy.deepcopy(BASE)) == 0
    out = capsys.readouterr().out
    assert "work: identical" in out
    assert "0 regression(s)" in out


def test_throughput_drop_beyond_threshold_fails(tmp_path, capsys):
    slower = variant(kernel_events__events_per_s=500.0)
    assert run_diff(tmp_path, BASE, slower) == 1
    out = capsys.readouterr().out
    assert "REGRESSION kernel-events.events_per_s" in out


def test_wall_clock_rise_beyond_threshold_fails(tmp_path, capsys):
    slower = variant(chaos_campaign__parallel_wall_s=9.0)
    assert run_diff(tmp_path, BASE, slower) == 1
    assert "REGRESSION chaos-campaign.parallel_wall_s" in capsys.readouterr().out


def test_noise_within_threshold_passes(tmp_path, capsys):
    noisy = variant(kernel_events__events_per_s=900.0, kernel_events__wall_s=1.1)
    assert run_diff(tmp_path, BASE, noisy) == 0


def test_improvement_is_reported_not_gated(tmp_path, capsys):
    faster = variant(kernel_events__events_per_s=2000.0)
    assert run_diff(tmp_path, BASE, faster) == 0
    assert "improved" in capsys.readouterr().out


def test_threshold_flag_tightens_the_gate(tmp_path, capsys):
    noisy = variant(kernel_events__events_per_s=900.0)
    assert run_diff(tmp_path, BASE, noisy, "--threshold", "0.05") == 1


# -- work halves ----------------------------------------------------------


def test_work_mismatch_fails_even_with_better_numbers(tmp_path, capsys):
    shrunk = variant(kernel_events__events_per_s=9999.0)
    shrunk["benches"][0]["work"]["scheduled"] = 1  # did far less work
    assert run_diff(tmp_path, BASE, shrunk) == 1
    out = capsys.readouterr().out
    assert "work: MISMATCH" in out
    assert "kernel-events" in out and "scheduled" in out


def test_added_or_removed_bench_is_a_work_mismatch(tmp_path, capsys):
    fewer = copy.deepcopy(BASE)
    fewer["benches"] = fewer["benches"][:1]
    assert run_diff(tmp_path, BASE, fewer) == 1
    assert "only in old report" in capsys.readouterr().out


# -- usage errors ---------------------------------------------------------


def test_missing_report_is_a_usage_error(tmp_path, capsys):
    old_path = write_report(tmp_path / "BENCH_1.json", BASE)
    assert main(["diff", old_path, str(tmp_path / "nope.json")]) == 2


def test_wrong_schema_is_a_usage_error(tmp_path, capsys):
    old_path = write_report(tmp_path / "BENCH_1.json", BASE)
    bogus = write_report(tmp_path / "other.json", {"schema": "something/else"})
    assert main(["diff", old_path, bogus]) == 2


def test_wrong_arity_is_a_usage_error(tmp_path, capsys):
    old_path = write_report(tmp_path / "BENCH_1.json", BASE)
    assert main(["diff", old_path]) == 2


# -- --latest -------------------------------------------------------------


def test_latest_picks_the_two_newest_reports(tmp_path, capsys):
    write_report(tmp_path / "BENCH_1.json", variant(kernel_events__events_per_s=9999.0))
    write_report(tmp_path / "BENCH_2.json", BASE)
    write_report(tmp_path / "BENCH_3.json", variant(kernel_events__events_per_s=400.0))
    # BENCH_1 is out of the window; 2 -> 3 is a regression.
    assert main(["diff", "--latest", "--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "BENCH_2.json -> " in out and "BENCH_3.json" in out


def test_latest_with_single_baseline_is_a_clean_no_op(tmp_path, capsys):
    write_report(tmp_path / "BENCH_1.json", BASE)
    assert main(["diff", "--latest", "--root", str(tmp_path)]) == 0
    assert "nothing to compare" in capsys.readouterr().out


# -- library surface ------------------------------------------------------


def test_metric_direction_classification():
    assert diff.metric_direction("events_per_s") == "higher"
    assert diff.metric_direction("speedup") == "higher"
    assert diff.metric_direction("wall_s") == "lower"
    assert diff.metric_direction("fingerprint_cold_s") == "lower"
    assert diff.metric_direction("cache_hits") == "neutral"


def test_zero_baseline_never_divides(tmp_path):
    old = variant(kernel_events__events_per_s=0.0)
    new = variant(kernel_events__events_per_s=10.0)
    result = diff.diff_reports(old, new)
    assert result.regressions(0.25) == []
