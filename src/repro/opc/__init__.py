"""OPC (OLE for Process Control) stack.

OPC "specifies a unified interface for accessing different types of data":
a hardware vendor wraps its device driver in a COM object (the *OPC
server*) and any application (an *OPC client*) reads plant data through
the standard interfaces (§1 of the paper).

This package implements the subset of OPC-DA the paper's architecture
uses:

* :class:`OpcServer` — a COM object exposing item read/write, browsing,
  group management and status.
* :class:`OpcGroup` — update-rate/deadband-driven data-change
  subscriptions (``IOPCDataCallback::OnDataChange``), deliverable locally
  or through DCOM one-way calls.
* :class:`OpcClient` — client-side helper for connecting to local or
  remote servers.
* :class:`ItemNamespace` / :class:`ItemDef` — the server address space.
* :class:`OpcValue` / :class:`Quality` — values with OPC quality flags
  and timestamps.
"""

from repro.opc.types import OpcValue, Quality, VT_BOOL, VT_I4, VT_R8, VT_BSTR, canonical_vt
from repro.opc.items import ItemDef, ItemNamespace
from repro.opc.group import OpcGroup, IOPC_DATA_CALLBACK
from repro.opc.server import IOPC_ITEM_IO, IOPC_SERVER, OpcServer, ServerState
from repro.opc.client import OpcClient

__all__ = [
    "IOPC_DATA_CALLBACK",
    "IOPC_ITEM_IO",
    "IOPC_SERVER",
    "ItemDef",
    "ItemNamespace",
    "OpcClient",
    "OpcGroup",
    "OpcServer",
    "OpcValue",
    "Quality",
    "ServerState",
    "VT_BOOL",
    "VT_BSTR",
    "VT_I4",
    "VT_R8",
    "canonical_vt",
]
